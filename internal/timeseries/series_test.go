package timeseries

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSeriesBasics(t *testing.T) {
	start := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	s := New(start, time.Minute, []float64{1, 2, 3, 4, 5})
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	if got := s.At(2); got != 3 {
		t.Errorf("At(2) = %v, want 3", got)
	}
	if got := s.TimeAt(3); !got.Equal(start.Add(3 * time.Minute)) {
		t.Errorf("TimeAt(3) = %v", got)
	}
	if got := s.Max(); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := s.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := s.Std(); !approxEq(got, math.Sqrt(2), 1e-12) {
		t.Errorf("Std = %v, want sqrt(2)", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Max() != 0 || s.Min() != 0 || s.Mean() != 0 || s.Std() != 0 {
		t.Errorf("empty series stats should be zero: max=%v min=%v mean=%v std=%v",
			s.Max(), s.Min(), s.Mean(), s.Std())
	}
}

func TestSeriesSlice(t *testing.T) {
	start := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	s := New(start, time.Hour, []float64{10, 20, 30, 40})
	sub := s.Slice(1, 3)
	if sub.Len() != 2 || sub.At(0) != 20 || sub.At(1) != 30 {
		t.Fatalf("Slice values wrong: %+v", sub.Values)
	}
	if !sub.Start.Equal(start.Add(time.Hour)) {
		t.Errorf("Slice start = %v, want %v", sub.Start, start.Add(time.Hour))
	}
}

func TestSeriesCloneIndependent(t *testing.T) {
	s := New(time.Time{}, time.Minute, []float64{1, 2})
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Error("Clone shares backing array with original")
	}
}

func TestSeriesScale(t *testing.T) {
	s := New(time.Time{}, time.Minute, []float64{1, -2, 3})
	out := s.Scale(2)
	want := []float64{2, -4, 6}
	for i, v := range out.Values {
		if v != want[i] {
			t.Errorf("Scale[%d] = %v, want %v", i, v, want[i])
		}
	}
	if s.Values[0] != 1 {
		t.Error("Scale mutated the receiver")
	}
}

func TestResample(t *testing.T) {
	s := New(time.Time{}, time.Minute, []float64{1, 3, 5, 7, 9})
	out, err := s.Resample(2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("Resample len = %d, want 2 (partial group dropped)", out.Len())
	}
	if out.At(0) != 2 || out.At(1) != 6 {
		t.Errorf("Resample values = %v, want [2 6]", out.Values)
	}
	if out.Interval != 2*time.Minute {
		t.Errorf("Resample interval = %v, want 2m", out.Interval)
	}
	if _, err := s.Resample(0); err == nil {
		t.Error("Resample(0) should fail")
	}
}

func TestResamplePreservesMeanProperty(t *testing.T) {
	f := func(raw []float64) bool {
		// Keep values finite and the length a multiple of 4.
		n := len(raw) / 4 * 4
		if n == 0 {
			return true
		}
		vals := make([]float64, n)
		for i := range vals {
			v := raw[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			vals[i] = math.Mod(v, 1e6)
		}
		s := New(time.Time{}, time.Minute, vals)
		out, err := s.Resample(4)
		if err != nil {
			return false
		}
		return approxEq(out.Mean(), s.Mean(), 1e-6*(1+math.Abs(s.Mean())))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMetrics(t *testing.T) {
	actual := []float64{100, 200, 0, 400}
	pred := []float64{110, 180, 50, 400}
	mre, err := MRE(actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	// Slot with actual==0 is skipped: (0.1 + 0.1 + 0)/3.
	if !approxEq(mre, 0.2/3, 1e-12) {
		t.Errorf("MRE = %v, want %v", mre, 0.2/3)
	}
	rmse, err := RMSE(actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt((100 + 400 + 2500 + 0) / 4.0)
	if !approxEq(rmse, want, 1e-12) {
		t.Errorf("RMSE = %v, want %v", rmse, want)
	}
	mae, err := MAE(actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(mae, (10+20+50+0)/4.0, 1e-12) {
		t.Errorf("MAE = %v", mae)
	}
}

func TestMetricsLengthMismatch(t *testing.T) {
	if _, err := MRE([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("MRE mismatch err = %v", err)
	}
	if _, err := RMSE([]float64{1}, nil); err != ErrLengthMismatch {
		t.Errorf("RMSE mismatch err = %v", err)
	}
	if _, err := MAE(nil, []float64{1}); err != ErrLengthMismatch {
		t.Errorf("MAE mismatch err = %v", err)
	}
}

func TestMetricsPerfectPrediction(t *testing.T) {
	a := []float64{3, 1, 4, 1, 5}
	for name, fn := range map[string]func([]float64, []float64) (float64, error){
		"MRE": MRE, "RMSE": RMSE, "MAE": MAE,
	} {
		got, err := fn(a, a)
		if err != nil || got != 0 {
			t.Errorf("%s(a,a) = %v, %v; want 0, nil", name, got, err)
		}
	}
}
