package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pstore/internal/elastic"
	"pstore/internal/faults"
	"pstore/internal/squall"
	"pstore/internal/store"
)

func testEngineConfig() store.Config {
	return store.Config{
		MaxMachines:          3,
		PartitionsPerMachine: 2,
		Buckets:              60,
		ServiceTime:          50 * time.Microsecond,
		QueueCapacity:        4096,
		InitialMachines:      1,
	}
}

func testSquallConfig() squall.Config {
	return squall.Config{
		ChunkRows:     50,
		RowCost:       time.Microsecond,
		ChunkOverhead: 10 * time.Microsecond,
		Spacing:       100 * time.Microsecond,
		RateFactor:    1,
	}
}

// cycleController is a deterministic scripted controller: once it sees load
// it scales out, and once the scale-out has landed it scales back in.
type cycleController struct {
	out, in int
	phase   int
}

func (c *cycleController) Name() string { return "cycle" }

func (c *cycleController) Tick(machines int, reconfiguring bool, load float64) (*elastic.Decision, error) {
	if reconfiguring {
		return nil, nil
	}
	switch c.phase {
	case 0:
		if load > 0 {
			c.phase = 1
			return &elastic.Decision{Target: c.out, RateFactor: 1}, nil
		}
	case 1:
		if machines == c.out {
			c.phase = 2
			return &elastic.Decision{Target: c.in, RateFactor: 1}, nil
		}
	}
	return nil, nil
}

// driveLoad submits no-op transactions until stop is closed.
func driveLoad(t *testing.T, c *Cluster, stop <-chan struct{}, wg *sync.WaitGroup) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Submit("noop", fmt.Sprintf("key-%d", i), nil); err != nil {
				return
			}
		}
	}()
}

// TestClusterScaleOutScaleInEvents starts a cluster, drives load through a
// full scale-out + scale-in cycle, and checks the typed event stream tells
// the whole story in order.
func TestClusterScaleOutScaleInEvents(t *testing.T) {
	c, err := New(Config{
		Engine:         testEngineConfig(),
		Squall:         testSquallConfig(),
		Controller:     &cycleController{out: 3, in: 1},
		Cycle:          3 * time.Millisecond,
		RecorderWindow: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Engine().Register("noop", func(tx *store.Tx) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	events, unsub := c.Subscribe(4096)
	defer unsub()
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	driveLoad(t, c, stop, &wg)

	// Collect events until both moves have finished.
	var got []Event
	finished := 0
	deadline := time.After(20 * time.Second)
	for finished < 2 {
		select {
		case e := <-events:
			got = append(got, e)
			if _, ok := e.(MoveFinished); ok {
				finished++
			}
		case <-deadline:
			t.Fatalf("timed out after %d moves; %d events so far", finished, len(got))
		}
	}
	close(stop)
	wg.Wait()
	c.Stop()

	// The stream must open with at least one load observation before any
	// move starts.
	if len(got) == 0 {
		t.Fatal("no events")
	}
	if _, ok := got[0].(LoadObserved); !ok {
		t.Fatalf("first event %T, want LoadObserved", got[0])
	}

	// Extract the move events and check the full cycle in order.
	var moves []Event
	for _, e := range got {
		switch e.(type) {
		case MoveStarted, MoveFinished:
			moves = append(moves, e)
		}
	}
	if len(moves) != 4 {
		t.Fatalf("got %d move events, want 4 (out start/finish, in start/finish): %v", len(moves), moves)
	}
	s1, ok := moves[0].(MoveStarted)
	if !ok || s1.From != 1 || s1.To != 3 || s1.Seq != 1 {
		t.Fatalf("move event 0 = %+v, want scale-out start 1->3 seq 1", moves[0])
	}
	f1, ok := moves[1].(MoveFinished)
	if !ok || f1.Seq != s1.Seq {
		t.Fatalf("move event 1 = %+v, want successful finish of seq %d", moves[1], s1.Seq)
	}
	s2, ok := moves[2].(MoveStarted)
	if !ok || s2.From != 3 || s2.To != 1 || s2.Seq != 2 {
		t.Fatalf("move event 2 = %+v, want scale-in start 3->1 seq 2", moves[2])
	}
	f2, ok := moves[3].(MoveFinished)
	if !ok || f2.Seq != s2.Seq {
		t.Fatalf("move event 3 = %+v, want successful finish of seq %d", moves[3], s2.Seq)
	}

	// While a move was in flight, every load observation must have said so
	// consistently with the started/finished bracketing; and no second move
	// may start before the first finishes (single-owner invariant).
	if c.Engine().ActiveMachines() != 1 {
		t.Errorf("final machines %d, want 1", c.Engine().ActiveMachines())
	}
	st := c.Stats()
	if st.Decisions != 2 || st.Moves != 2 {
		t.Errorf("stats %+v, want 2 decisions and 2 moves", st)
	}
	if st.Failures != 0 {
		t.Errorf("stats %+v, want no failures", st)
	}
	if rec := c.Recorder(); rec == nil {
		t.Error("no recorder attached")
	} else if rec.MachineSeries() == nil {
		t.Error("recorder has no machine timeline")
	}
}

// errController always fails its Tick.
type errController struct{}

func (errController) Name() string { return "err" }
func (errController) Tick(int, bool, float64) (*elastic.Decision, error) {
	return nil, errors.New("boom")
}

func TestClusterDecisionFailedEvents(t *testing.T) {
	c, err := New(Config{
		Engine:     testEngineConfig(),
		Squall:     testSquallConfig(),
		Controller: errController{},
		Cycle:      2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	events, unsub := c.Subscribe(64)
	defer unsub()
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	deadline := time.After(10 * time.Second)
	for {
		select {
		case e := <-events:
			if df, ok := e.(DecisionFailed); ok {
				if df.Err == nil {
					t.Fatal("DecisionFailed with nil error")
				}
				if c.Stats().Failures == 0 {
					t.Error("failure not counted")
				}
				return
			}
		case <-deadline:
			t.Fatal("no DecisionFailed event")
		}
	}
}

// emergencyController issues one emergency decision as soon as it runs.
type emergencyController struct{ fired bool }

func (e *emergencyController) Name() string { return "emergency" }
func (e *emergencyController) Tick(machines int, reconfiguring bool, load float64) (*elastic.Decision, error) {
	if e.fired || reconfiguring {
		return nil, nil
	}
	e.fired = true
	return &elastic.Decision{Target: 2, RateFactor: 1, Emergency: true}, nil
}

// TestClusterSpikeRateOverride checks the configured emergency rate
// override reaches the executor (the Figure 11 knob) and that the
// EmergencyTriggered event reports the controller's original rate.
func TestClusterSpikeRateOverride(t *testing.T) {
	c, err := New(Config{
		Engine:          testEngineConfig(),
		Squall:          testSquallConfig(),
		Controller:      &emergencyController{},
		Cycle:           2 * time.Millisecond,
		SpikeRateFactor: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	events, unsub := c.Subscribe(256)
	defer unsub()
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	var sawEmergency bool
	deadline := time.After(10 * time.Second)
	for {
		select {
		case e := <-events:
			switch ev := e.(type) {
			case EmergencyTriggered:
				sawEmergency = true
				if ev.RateFactor != 1 {
					t.Errorf("EmergencyTriggered.RateFactor = %v, want the controller's 1", ev.RateFactor)
				}
			case MoveStarted:
				if !sawEmergency {
					t.Error("MoveStarted before EmergencyTriggered")
				}
				if !ev.Emergency {
					t.Errorf("move not flagged emergency: %+v", ev)
				}
				if ev.RateFactor != 8 {
					t.Errorf("MoveStarted.RateFactor = %v, want overridden 8", ev.RateFactor)
				}
				if got := c.Stats().Emergencies; got != 1 {
					t.Errorf("emergencies %d, want 1", got)
				}
				return
			}
		case <-deadline:
			t.Fatal("no emergency move observed")
		}
	}
}

// TestClusterManualReconfigure exercises the synchronous operator-move path
// and the single-move-at-a-time invariant.
func TestClusterManualReconfigure(t *testing.T) {
	c, err := New(Config{Engine: testEngineConfig(), Squall: testSquallConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.Reconfigure(3, 0); err != nil {
		t.Fatal(err)
	}
	if c.Engine().ActiveMachines() != 3 {
		t.Fatalf("machines %d, want 3", c.Engine().ActiveMachines())
	}
	if err := c.Reconfigure(3, 0); err != nil {
		t.Fatalf("no-op reconfigure: %v", err)
	}
	if err := c.Reconfigure(2, 0); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Moves != 2 {
		t.Errorf("moves %d, want 2 (no-op must not count)", st.Moves)
	}
	c.Stop()
	if err := c.Reconfigure(1, 0); err == nil {
		t.Error("Reconfigure after Stop succeeded")
	}
}

// observingController never decides but records every move outcome the
// runtime delivers, so tests can assert the MoveObserver plumbing.
type observingController struct {
	mu      sync.Mutex
	results []error
}

func (o *observingController) Name() string { return "observing" }
func (o *observingController) Tick(int, bool, float64) (*elastic.Decision, error) {
	return nil, nil
}
func (o *observingController) MoveResult(target int, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.results = append(o.results, err)
}
func (o *observingController) snapshot() []error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]error(nil), o.results...)
}

// TestClusterMoveFailureEventAndRecovery wires a fault injector that kills
// one partition pair into the runtime and checks the full failure story: the
// reconfiguration fails with a rolled-back MoveFailed event, the failure is
// counted, the controller hears about it on the decision loop, and the
// runtime immediately accepts and completes a subsequent move once the
// fault clears.
func TestClusterMoveFailureEventAndRecovery(t *testing.T) {
	inj, err := faults.New(faults.Config{Seed: 1, CrashPairs: []faults.PartitionPair{{From: 0, To: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := &observingController{}
	c, err := New(Config{
		Engine:        testEngineConfig(),
		Squall:        testSquallConfig(),
		Controller:    ctrl,
		Cycle:         2 * time.Millisecond,
		FaultInjector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	events, unsub := c.Subscribe(256)
	defer unsub()
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	moveErr := c.Reconfigure(2, 0)
	if moveErr == nil {
		t.Fatal("reconfiguration over a crashed pair succeeded")
	}
	var me *squall.MoveError
	if !errors.As(moveErr, &me) || !me.RolledBack {
		t.Fatalf("error %v, want a rolled-back *squall.MoveError", moveErr)
	}
	if got := c.Engine().ActiveMachines(); got != 1 {
		t.Fatalf("machines %d after failed move, want 1", got)
	}
	if got := c.Stats().Failures; got != 1 {
		t.Errorf("Failures = %d, want 1", got)
	}

	// The event stream must show started -> failed, with the failure typed.
	var failed *MoveFailed
	deadline := time.After(10 * time.Second)
	for failed == nil {
		select {
		case e := <-events:
			switch ev := e.(type) {
			case MoveFinished:
				t.Fatalf("MoveFinished %+v for a failed move", ev)
			case MoveFailed:
				failed = &ev
			}
		case <-deadline:
			t.Fatal("no MoveFailed event")
		}
	}
	if failed.Err == nil || !failed.RolledBack || failed.From != 1 || failed.To != 2 {
		t.Fatalf("MoveFailed %+v, want rolled-back 1->2 with error", failed)
	}

	// The decision loop must deliver the outcome to the observer.
	deadline = time.After(10 * time.Second)
	for {
		if rs := ctrl.snapshot(); len(rs) > 0 {
			if rs[0] == nil {
				t.Fatal("observer saw nil error for the failed move")
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("controller never heard about the failed move")
		case <-time.After(time.Millisecond):
		}
	}

	// Clear the fault plane: the runtime must accept a fresh move at once.
	c.Engine().SetFaultInjector(nil)
	if err := c.Reconfigure(2, 0); err != nil {
		t.Fatalf("reconfiguration after recovered failure: %v", err)
	}
	if got := c.Engine().ActiveMachines(); got != 2 {
		t.Fatalf("machines %d after recovery, want 2", got)
	}
	deadline = time.After(10 * time.Second)
	for {
		rs := ctrl.snapshot()
		if len(rs) >= 2 {
			if rs[1] != nil {
				t.Fatalf("observer saw error %v for the successful move", rs[1])
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("controller never heard about the successful move")
		case <-time.After(time.Millisecond):
		}
	}
	if st := c.Stats(); st.Moves != 2 || st.Failures != 1 {
		t.Errorf("stats %+v, want 2 moves and 1 failure", st)
	}
}
