package cluster

import (
	"context"
	"fmt"
	"os/exec"
	"time"

	"pstore/internal/transport"
	"pstore/internal/wire"
)

// Coordinator-side failover: a deterministic failure detector over the
// health probe, and the two recovery actions the coordinator can take when
// it fires — promote the dead node's warm follower (rewiring the survivors'
// forwarding tables to the new primary), or cold-restart the process from
// its own data directory. Both are fenced: promotion raises the epoch above
// everything the cluster has seen, so a zombie of the old primary that
// resumes shipping (or serving) is refused with CodeFenced.

// DetectorConfig parameterizes failure detection for one watched node.
type DetectorConfig struct {
	// Probe is the health-probe period (default 100ms).
	Probe time.Duration
	// FailAfter is how many consecutive probe failures declare the node
	// dead (default 3). Detection latency is therefore deterministic:
	// between (FailAfter-1) x Probe and FailAfter x Probe after the
	// failure, independent of what else the coordinator is doing.
	FailAfter int
}

func (c *DetectorConfig) defaults() {
	if c.Probe <= 0 {
		c.Probe = 100 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
}

// DetectFailure probes the node until it fails FailAfter consecutive
// health checks (a dead process, an unreachable link, and a latched WAL
// error all read the same: unhealthy), returning the elapsed detection
// time. It returns ctx.Err() if cancelled first.
func DetectFailure(ctx context.Context, node *transport.Peer, cfg DetectorConfig) (time.Duration, error) {
	cfg.defaults()
	start := time.Now()
	failures := 0
	t := time.NewTicker(cfg.Probe)
	defer t.Stop()
	for {
		probe, cancel := context.WithTimeout(ctx, cfg.Probe)
		err := node.Health(probe)
		cancel()
		if err != nil {
			failures++
			if failures >= cfg.FailAfter {
				return time.Since(start), nil
			}
		} else {
			failures = 0
		}
		select {
		case <-ctx.Done():
			return time.Since(start), ctx.Err()
		case <-t.C:
		}
	}
}

// PromoteConfig parameterizes a failover promotion.
type PromoteConfig struct {
	// Replica is the dead primary's warm follower; ReplicaURL is the base
	// URL survivors should forward to once it is primary.
	Replica    *transport.Peer
	ReplicaURL string
	// FailedNode is the node slot the replica takes over.
	FailedNode int
	// Survivors are the remaining live nodes by node id; each one's peer
	// table is rewired so transactions for the failed node's machines reach
	// the promoted replica.
	Survivors map[int]*transport.Peer
}

// Promote fails the dead primary over to its follower: pick an epoch above
// everything the survivors and the replica have seen, promote under it,
// then rewire every survivor. The promotion is first — a survivor
// forwarding to a still-replica gets a retryable refusal, which is benign,
// while a zombie primary must be fenced before any client traffic lands on
// the new one.
func Promote(ctx context.Context, cfg PromoteConfig) (wire.ReplStatus, error) {
	var max uint64
	st, err := cfg.Replica.ReplStatus(ctx)
	if err != nil {
		return st, fmt.Errorf("cluster: replica status: %w", err)
	}
	max = st.Epoch
	for id, p := range cfg.Survivors {
		ns, err := p.Status(ctx)
		if err != nil {
			return st, fmt.Errorf("cluster: survivor %d status: %w", id, err)
		}
		if ns.Epoch > max {
			max = ns.Epoch
		}
	}
	promoted, err := cfg.Replica.Promote(ctx, max+1)
	if err != nil {
		return promoted, fmt.Errorf("cluster: promoting follower: %w", err)
	}
	for id, p := range cfg.Survivors {
		if err := p.SetPeer(ctx, cfg.FailedNode, cfg.ReplicaURL); err != nil {
			return promoted, fmt.Errorf("cluster: rewiring survivor %d: %w", id, err)
		}
	}
	return promoted, nil
}

// RejoinConfig parameterizes folding a fenced ex-primary back into the
// cluster as a warm follower of the promoted node.
type RejoinConfig struct {
	// Zombie is the deposed primary (restarted or still live but fenced);
	// Primary the promoted node it must follow, at PrimaryURL.
	Zombie     *transport.Peer
	Primary    *transport.Peer
	PrimaryURL string
	// Poll is the convergence-poll period (default 50ms); Timeout bounds the
	// whole rejoin (default 60s).
	Poll    time.Duration
	Timeout time.Duration
}

// Rejoin demotes the zombie into the promoted primary's followership and
// waits until it has converged: role flipped to replica and its applied
// cursor caught up to the primary's durable end as sampled at the moment the
// demotion was ordered (records written after that keep shipping; chasing
// them would make convergence a moving target). Returns the zombie's status
// at convergence.
func Rejoin(ctx context.Context, cfg RejoinConfig) (wire.ReplStatus, error) {
	if cfg.Poll <= 0 {
		cfg.Poll = 50 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	target, err := cfg.Primary.ReplStatus(ctx)
	if err != nil {
		return wire.ReplStatus{}, fmt.Errorf("cluster: primary status: %w", err)
	}
	st, err := cfg.Zombie.ReplDemote(ctx, cfg.PrimaryURL)
	if err != nil {
		return st, fmt.Errorf("cluster: demoting zombie: %w", err)
	}
	caughtUp := func(s wire.ReplStatus) bool {
		if s.Role != "replica" {
			return false
		}
		a, d := s.Applied, target.Durable
		return a.Seg > d.Seg || (a.Seg == d.Seg && a.Rec >= d.Rec)
	}
	t := time.NewTicker(cfg.Poll)
	defer t.Stop()
	for !caughtUp(st) {
		select {
		case <-ctx.Done():
			return st, fmt.Errorf("cluster: rejoin did not converge (role %q, applied %+v, target %+v): %w",
				st.Role, st.Applied, target.Durable, ctx.Err())
		case <-t.C:
		}
		if st, err = cfg.Zombie.ReplStatus(ctx); err != nil {
			return st, fmt.Errorf("cluster: zombie status: %w", err)
		}
	}
	return st, nil
}

// RestartNode cold-restarts a dead node by running command (via the shell,
// so the coordinator can be handed the exact serve invocation) and waiting
// until the relaunched process answers its status endpoint — at which point
// it has cold-started from its own data directory.
func RestartNode(ctx context.Context, node *transport.Peer, command string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	cmd := exec.Command("sh", "-c", command)
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("cluster: restart command: %w", err)
	}
	// The relaunched serve owns its own lifetime; reap it in the background
	// so a coordinator outliving it leaves no zombie.
	go func() { _ = cmd.Wait() }()
	if err := node.WaitHealthy(ctx, timeout); err != nil {
		return fmt.Errorf("cluster: restarted node: %w", err)
	}
	return nil
}
