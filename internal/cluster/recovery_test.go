package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"pstore/internal/elastic"
	"pstore/internal/faults"
	"pstore/internal/store"
)

// crashProbeController records what the runtime tells a controller about
// machine failures, and asks for one emergency scale-out of the *effective*
// cluster while degraded, so the test can check the runtime translates the
// target past the dead slot.
type crashProbeController struct {
	mu          sync.Mutex
	failed      []int
	recovered   []int
	minMachines int
	scaledOut   bool
}

func (p *crashProbeController) Name() string { return "crash-probe" }

func (p *crashProbeController) Tick(machines int, reconfiguring bool, _ float64) (*elastic.Decision, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.minMachines == 0 || machines < p.minMachines {
		p.minMachines = machines
	}
	if len(p.failed) > len(p.recovered) && !p.scaledOut && !reconfiguring {
		p.scaledOut = true
		return &elastic.Decision{Target: machines + 1, RateFactor: 1, Emergency: true}, nil
	}
	return nil, nil
}

func (p *crashProbeController) MachineFailed(m int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failed = append(p.failed, m)
}

func (p *crashProbeController) MachineRecovered(m int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.recovered = append(p.recovered, m)
}

// TestClusterCrashRecovery arms a planned crash schedule and checks the full
// closed loop: the failure and recovery surface as typed events and
// FailureObserver callbacks, the controller sees effective (not raw)
// capacity, its scale-out target is translated past the dead machine, and
// the data set survives the crash intact.
func TestClusterCrashRecovery(t *testing.T) {
	const keys = 200
	ctrl := &crashProbeController{}
	eng := testEngineConfig()
	eng.InitialMachines = 2
	c, err := New(Config{
		Engine:     eng,
		Squall:     testSquallConfig(),
		Controller: ctrl,
		Cycle:      3 * time.Millisecond,
		Crash: &faults.CrashSchedule{
			Planned: []faults.PlannedCrash{{Machine: 1, Tick: 2, Downtime: 3}},
		},
		RecorderWindow: 20 * time.Millisecond,
		Bootstrap: func(e *store.Engine) error {
			for i := 0; i < keys; i++ {
				if _, err := e.Execute("put", fmt.Sprintf("k-%d", i), i); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Recovery() == nil {
		t.Fatal("crash schedule armed but Recovery() is nil")
	}
	reg := func(name string, fn func(tx *store.Tx) (any, error)) {
		t.Helper()
		if err := c.Engine().Register(name, fn); err != nil {
			t.Fatal(err)
		}
	}
	reg("put", func(tx *store.Tx) (any, error) { return nil, tx.Put("T", tx.Key, tx.Args) })
	reg("get", func(tx *store.Tx) (any, error) {
		v, _, err := tx.Get("T", tx.Key)
		return v, err
	})
	events, unsub := c.Subscribe(4096)
	defer unsub()
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	var failedEv *MachineFailed
	var recoveredEv *MachineRecovered
	deadline := time.After(20 * time.Second)
	for recoveredEv == nil {
		select {
		case e := <-events:
			switch ev := e.(type) {
			case MachineFailed:
				failedEv = &ev
			case MachineRecovered:
				recoveredEv = &ev
			}
		case <-deadline:
			t.Fatalf("timed out waiting for crash/recovery events (failed=%v)", failedEv)
		}
	}
	if failedEv == nil {
		t.Fatal("MachineRecovered arrived without a MachineFailed")
	}
	if failedEv.Machine != 1 || failedEv.Cycle != 2 || failedEv.RecoverAtCycle != 5 {
		t.Fatalf("MachineFailed = %+v, want machine 1 at cycle 2 recovering at 5", failedEv)
	}
	if recoveredEv.Machine != 1 || recoveredEv.Downtime <= 0 {
		t.Fatalf("MachineRecovered = %+v, want machine 1 with positive downtime", recoveredEv)
	}

	// The controller saw the loss: effective capacity dipped to 1 and both
	// observer callbacks fired for machine 1.
	ctrl.mu.Lock()
	minMachines, failed, recovered := ctrl.minMachines, ctrl.failed, ctrl.recovered
	ctrl.mu.Unlock()
	if minMachines != 1 {
		t.Errorf("controller min effective machines = %d, want 1", minMachines)
	}
	if len(failed) != 1 || failed[0] != 1 {
		t.Errorf("MachineFailed callbacks = %v, want [1]", failed)
	}
	if len(recovered) != 1 || recovered[0] != 1 {
		t.Errorf("MachineRecovered callbacks = %v, want [1]", recovered)
	}

	// The degraded-mode decision asked for effective+1 = 2; the runtime must
	// have translated it to 3 raw machines (past the dead slot).
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		for i := 0; i < 4000; i++ {
			if cond() {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	waitFor(func() bool { return c.Engine().ActiveMachines() == 3 }, "translated scale-out to 3 machines")
	waitFor(func() bool { return len(c.Engine().DownMachines()) == 0 }, "machine 1 recovery")

	// Data integrity end to end: every bootstrap row is readable with its
	// original value after crash, recovery and a concurrent scale-out.
	for i := 0; i < keys; i++ {
		v, err := c.Submit("get", fmt.Sprintf("k-%d", i), nil)
		if err != nil {
			t.Fatalf("get k-%d: %v", i, err)
		}
		if v != i {
			t.Fatalf("k-%d = %v, want %d", i, v, i)
		}
	}
	st := c.Recovery().Stats()
	if st.Crashes != 1 || st.Recoveries != 1 {
		t.Errorf("recovery stats = %+v, want 1 crash / 1 recovery", st)
	}
	if st.Checkpoints < 1 {
		t.Errorf("Checkpoints = %d, want >= 1 (initial baseline)", st.Checkpoints)
	}
	rc := c.Recorder().RecoveryCounters()
	if rc.Crashes != 1 || rc.Recoveries != 1 {
		t.Errorf("recorder RecoveryCounters = %+v, want 1 crash / 1 recovery", rc)
	}
}

// TestClusterCrashWithoutController runs the crash plane on a static cluster
// (no controller): the decision loop must still drive crash, checkpoint and
// recovery.
func TestClusterCrashWithoutController(t *testing.T) {
	eng := testEngineConfig()
	eng.InitialMachines = 2
	c, err := New(Config{
		Engine: eng,
		Squall: testSquallConfig(),
		Cycle:  2 * time.Millisecond,
		Crash: &faults.CrashSchedule{
			Planned: []faults.PlannedCrash{{Machine: 0, Tick: 1, Downtime: 2}},
		},
		CheckpointEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Engine().Register("noop", func(tx *store.Tx) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	events, unsub := c.Subscribe(256)
	defer unsub()
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	sawFailed, sawRecovered := false, false
	deadline := time.After(20 * time.Second)
	for !sawRecovered {
		select {
		case e := <-events:
			switch e.(type) {
			case MachineFailed:
				sawFailed = true
			case MachineRecovered:
				sawRecovered = true
			}
		case <-deadline:
			t.Fatalf("timed out (failed=%v)", sawFailed)
		}
	}
	if !sawFailed {
		t.Fatal("recovered without failing first")
	}
	st := c.Recovery().Stats()
	if st.Crashes != 1 || st.Recoveries != 1 {
		t.Fatalf("recovery stats = %+v, want 1 crash / 1 recovery", st)
	}
}

// TestClusterCrashConfigValidation pins the construction-time contract.
func TestClusterCrashConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{Engine: testEngineConfig(), Squall: testSquallConfig()}
	}
	cfg := base()
	cfg.Crash = &faults.CrashSchedule{Rate: 0.5} // no Cycle
	if _, err := New(cfg); err == nil {
		t.Error("crash schedule without Cycle accepted")
	}
	cfg = base()
	cfg.Crash = &faults.CrashSchedule{Rate: 2}
	cfg.Cycle = time.Millisecond
	if _, err := New(cfg); err == nil {
		t.Error("invalid crash rate accepted")
	}
	cfg = base()
	cfg.CheckpointEvery = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative CheckpointEvery accepted")
	}
	// An empty schedule is inert: no manager, no loop requirement.
	cfg = base()
	cfg.Crash = &faults.CrashSchedule{}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Recovery() != nil {
		t.Error("empty crash schedule built a recovery manager")
	}
	// CheckpointEvery alone builds the manager for manual use.
	cfg = base()
	cfg.CheckpointEvery = 7
	c, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Recovery() == nil {
		t.Error("CheckpointEvery alone did not build a recovery manager")
	}
}
