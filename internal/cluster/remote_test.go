package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"pstore/internal/faults"
	"pstore/internal/store"
	"pstore/internal/transport"
)

// The coordinator-mode tests drive the same runtime as the rest of the suite,
// but over a multi-process loopback topology: node engines behind real HTTP
// listeners, the cluster holding no engine of its own.

func remoteRegister(eng *store.Engine) error {
	if err := eng.Register("put", func(tx *store.Tx) (any, error) {
		return nil, tx.Put("T", tx.Key, tx.Args)
	}); err != nil {
		return err
	}
	return eng.Register("get", func(tx *store.Tx) (any, error) {
		v, ok, err := tx.Get("T", tx.Key)
		if err != nil || !ok {
			return nil, fmt.Errorf("missing %q: %v", tx.Key, err)
		}
		return v, nil
	})
}

func remoteDecodeArgs(txn string, raw json.RawMessage) (any, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return nil, nil
	}
	var v int
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

func remoteDecodeRow(table string, raw json.RawMessage) (any, error) {
	var v int
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

func newRemoteLoopback(t *testing.T, nodes int) *transport.Loopback {
	t.Helper()
	lb, err := transport.NewLoopback(transport.LoopbackConfig{
		Nodes:      nodes,
		Store:      testEngineConfig(),
		Register:   remoteRegister,
		DecodeArgs: remoteDecodeArgs,
		DecodeRow:  remoteDecodeRow,
		Recovery:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = lb.Close() })
	return lb
}

// loadRemote runs the same deterministic load on every node engine; each
// keeps the keys it hosts and refuses the rest.
func loadRemote(t *testing.T, lb *transport.Loopback, keys int) {
	t.Helper()
	for _, e := range lb.Engines() {
		for i := 0; i < keys; i++ {
			if _, err := e.Execute("put", fmt.Sprintf("k-%d", i), i); err != nil {
				if errors.Is(err, store.ErrNotOwned) {
					continue
				}
				t.Fatalf("loading k-%d: %v", i, err)
			}
		}
	}
}

// waitEvent drains the event channel until an event of type E arrives.
func waitEvent[E Event](t *testing.T, ch <-chan Event, what string) E {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("event stream closed waiting for %s", what)
			}
			if e, is := ev.(E); is {
				return e
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		}
	}
}

// TestRemoteCoordinator runs the full runtime in coordinator mode: manual
// scale-out and scale-in execute through node RPCs, the armed crash schedule
// crashes and restores a machine on a remote node through the same recovery
// tick as single-process mode, and the data set survives it all.
func TestRemoteCoordinator(t *testing.T) {
	const keys = 200
	lb := newRemoteLoopback(t, 2)
	loadRemote(t, lb, keys)

	// A long cycle sequences the test: the scale-out below completes well
	// before the crash at tick 2 fires.
	c, err := NewRemote(Config{
		Squall: testSquallConfig(),
		Cycle:  50 * time.Millisecond,
		Crash: &faults.CrashSchedule{
			Planned: []faults.PlannedCrash{{Machine: 1, Tick: 2, Downtime: 1}},
		},
	}, lb.Remote())
	if err != nil {
		t.Fatal(err)
	}
	if c.Engine() != nil {
		t.Fatal("coordinator mode should have no local engine")
	}
	if c.Recovery() != nil {
		t.Fatal("coordinator mode should have no local recovery manager")
	}
	ch, cancelSub := c.Subscribe(64)
	defer cancelSub()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if _, err := c.Submit("put", "k-0", 1); err == nil {
		t.Fatal("Submit should fail in coordinator mode")
	}
	if _, ok := c.Handle("put"); ok {
		t.Fatal("Handle should fail in coordinator mode")
	}

	// Manual scale-out executes over the wire through the Squall executor.
	if err := c.Reconfigure(3, 0); err != nil {
		t.Fatalf("scale-out: %v", err)
	}
	if got := lb.Remote().ActiveMachines(); got != 3 {
		t.Fatalf("ActiveMachines = %d after scale-out, want 3", got)
	}

	// The crash schedule fires on the decision loop and fences machine 1 on
	// its hosting node; a cycle later the same loop restores it.
	failed := waitEvent[MachineFailed](t, ch, "MachineFailed")
	if failed.Machine != 1 {
		t.Fatalf("crashed machine = %d, want 1", failed.Machine)
	}
	if down := lb.Remote().DownMachines(); len(down) != 1 || down[0] != 1 {
		t.Fatalf("DownMachines = %v during outage, want [1]", down)
	}
	recovered := waitEvent[MachineRecovered](t, ch, "MachineRecovered")
	if recovered.Machine != 1 {
		t.Fatalf("recovered machine = %d, want 1", recovered.Machine)
	}
	if down := lb.Remote().DownMachines(); len(down) != 0 {
		t.Fatalf("DownMachines = %v after recovery, want []", down)
	}

	// Scale back in after recovery; the dataset must be intact and unique.
	if err := c.Reconfigure(1, 0); err != nil {
		t.Fatalf("scale-in: %v", err)
	}
	if got := lb.Remote().TotalRows(); got != keys {
		t.Fatalf("TotalRows = %d, want %d", got, keys)
	}
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k-%d", i)
		found := false
		for _, e := range lb.Engines() {
			v, err := e.Execute("get", key, nil)
			if errors.Is(err, store.ErrNotOwned) {
				continue
			}
			if err != nil {
				t.Fatalf("get %s: %v", key, err)
			}
			if v != i {
				t.Fatalf("%s = %v, want %d", key, v, i)
			}
			found = true
		}
		if !found {
			t.Fatalf("%s hosted nowhere after migrations", key)
		}
	}
	if st := c.Stats(); st.Moves != 2 {
		t.Fatalf("Stats.Moves = %d, want 2", st.Moves)
	}
}
