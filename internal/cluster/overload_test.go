package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pstore/internal/elastic"
	"pstore/internal/store"
)

// signalRecorder is a do-nothing controller that records every overload
// signal the runtime delivers, so the test can check the delivery contract.
type signalRecorder struct {
	mu   sync.Mutex
	sigs []elastic.OverloadSignal
}

func (s *signalRecorder) Name() string { return "signal-recorder" }

func (s *signalRecorder) Tick(int, bool, float64) (*elastic.Decision, error) { return nil, nil }

func (s *signalRecorder) Overloaded(sig elastic.OverloadSignal) {
	s.mu.Lock()
	s.sigs = append(s.sigs, sig)
	s.mu.Unlock()
}

func (s *signalRecorder) snapshot() []elastic.OverloadSignal {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]elastic.OverloadSignal(nil), s.sigs...)
}

// TestClusterOverloadSignalDelivery drives a deliberately under-provisioned
// cluster past its queue deadline and checks the runtime's side of the
// overload contract: refused work shows up as counter deltas in the signal
// delivered to an OverloadObserver controller every cycle (zero cycles
// included), and cycles with refusals also publish OverloadObserved events
// whose counts sum to the engine's own counters.
func TestClusterOverloadSignalDelivery(t *testing.T) {
	ctrl := &signalRecorder{}
	engCfg := store.Config{
		MaxMachines:          2,
		PartitionsPerMachine: 1,
		Buckets:              16,
		ServiceTime:          time.Millisecond,
		QueueCapacity:        64,
		InitialMachines:      1,
		Overload:             store.OverloadConfig{Deadline: 2 * time.Millisecond, Track: true},
	}
	c, err := New(Config{
		Engine:         engCfg,
		Squall:         testSquallConfig(),
		Controller:     ctrl,
		Cycle:          3 * time.Millisecond,
		RecorderWindow: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Engine().Register("noop", func(tx *store.Tx) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	events, unsub := c.Subscribe(4096)
	defer unsub()
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Flood far past 1 machine x 1ms service time: queue sojourn blows the
	// 2ms deadline, so the engine must start refusing work.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i += 7 {
				select {
				case <-stop:
					return
				default:
				}
				_, err := c.Submit("noop", fmt.Sprintf("key-%d", i), nil)
				if err != nil && !errors.Is(err, store.ErrOverload) && !errors.Is(err, store.ErrDeadlineExceeded) {
					return
				}
			}
		}(w)
	}

	deadline := time.Now().Add(10 * time.Second)
	refusedSeen := false
	for time.Now().Before(deadline) && !refusedSeen {
		for _, sig := range ctrl.snapshot() {
			if sig.Refused() > 0 {
				refusedSeen = true
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if !refusedSeen {
		t.Fatal("no overload signal with refused work reached the controller")
	}

	// Let a few quiet cycles pass so the zero-delivery leg is observable too.
	time.Sleep(20 * time.Millisecond)
	c.Stop()

	sigs := ctrl.snapshot()
	var sigRefused int64
	zeroSeen := false
	for _, sig := range sigs {
		if sig.Refused() == 0 {
			zeroSeen = true
		}
		sigRefused += sig.Refused()
	}
	if !zeroSeen {
		t.Error("observer never saw a zero signal: delivery is not every-cycle")
	}

	// Drain events published so far and cross-check against the counters.
	var evRefused int64
	overloadEvents := 0
drain:
	for {
		select {
		case ev, ok := <-events:
			if !ok { // Stop closed the subscription
				break drain
			}
			if o, ok := ev.(OverloadObserved); ok {
				overloadEvents++
				if o.Rejected+o.Shed+o.DeadlineExceeded == 0 {
					t.Errorf("OverloadObserved with zero counts: %+v", o)
				}
				evRefused += o.Rejected + o.Shed + o.DeadlineExceeded
			}
		default:
			break drain
		}
	}
	if overloadEvents == 0 {
		t.Fatal("no OverloadObserved events published despite refusals")
	}
	cnt := c.Engine().Counters()
	engRefused := cnt.Rejected + cnt.Shed + cnt.DeadlineExceeded
	if engRefused == 0 {
		t.Fatal("engine counters show no refusals")
	}
	// Signals are per-cycle deltas of the same counters: their sum can only
	// trail the engine total (the final partial cycle is never delivered).
	if sigRefused > engRefused {
		t.Errorf("signals sum to %d refusals, engine counted only %d", sigRefused, engRefused)
	}
	if evRefused > engRefused {
		t.Errorf("events sum to %d refusals, engine counted only %d", evRefused, engRefused)
	}
}
