// Package cluster is the P-Store serving runtime: it assembles the full
// stack the paper runs as one closed loop (Section 6, Figures 9-11) — the
// partitioned storage engine, the Squall migration executor, the latency
// recorder, and a provisioning controller — behind a single lifecycle.
//
// A Cluster is the sole owner of move execution: the monitoring/decision
// loop observes the aggregate load once per cycle, consults the controller,
// and executes at most one reconfiguration at a time through the executor.
// Observers subscribe to a typed event stream (MoveStarted, MoveFinished,
// DecisionFailed, EmergencyTriggered, per-cycle LoadObserved) instead of
// reaching into engine counters or executor state.
//
// Lifecycle: New(Config) builds the stack; register transactions on
// Engine() before Start; Start(ctx) boots the engine, runs the optional
// Bootstrap loader, attaches the recorder and launches the decision loop;
// Stop() halts the loop, drains any in-flight move, detaches the recorder
// and shuts the engine down.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/elastic"
	"pstore/internal/faults"
	"pstore/internal/metrics"
	"pstore/internal/recovery"
	"pstore/internal/squall"
	"pstore/internal/store"
	"pstore/internal/transport"
)

// Config assembles a Cluster.
type Config struct {
	// Engine sizes the storage substrate.
	Engine store.Config
	// Squall tunes migration chunking and throttling.
	Squall squall.Config
	// Controller decides, once per Cycle, whether to reconfigure. Nil runs
	// a static cluster (no monitoring loop).
	Controller elastic.Controller
	// Cycle is the wall time between controller ticks. Required when a
	// Controller is set.
	Cycle time.Duration
	// RateScale converts paper-unit requests into substrate transactions:
	// observed transaction counts are divided by it before reaching the
	// controller. Zero means 1 (controller sees raw transactions).
	RateScale float64
	// CycleTraceMinutes is how many trace minutes one cycle spans; the
	// observed load is averaged over it so the controller sees requests per
	// trace minute. Zero means 1.
	CycleTraceMinutes float64
	// SpikeRateFactor overrides the migration rate of emergency moves (the
	// paper's "rate R x 8" study, Figure 11). Zero keeps each decision's
	// own rate.
	SpikeRateFactor float64
	// RecorderWindow is the latency recorder's aggregation window. Zero
	// runs without a recorder.
	RecorderWindow time.Duration
	// Bootstrap, if set, runs during Start after the engine boots but
	// before the recorder attaches and the decision loop begins — the place
	// to load data so bulk loading is neither measured nor mistaken for
	// offered load.
	Bootstrap func(*store.Engine) error
	// FaultInjector, if set, is attached to the engine's migration path
	// for chaos runs (see internal/faults). Failed moves roll back and
	// surface as MoveFailed events; the runtime itself keeps serving.
	FaultInjector store.FaultInjector
	// Crash, if set and non-empty, arms the deterministic machine-crash
	// schedule: the decision loop consults it every monitoring cycle,
	// crashes fire as MachineFailed events, and crashed machines recover
	// automatically after their downtime (in cycles) through the recovery
	// manager. Requires Cycle > 0; a controller is optional.
	Crash *faults.CrashSchedule
	// CheckpointEvery checkpoints the recovery manager every N monitoring
	// cycles. Zero defaults to 10 when a crash schedule is armed; setting
	// it without a crash schedule still builds the recovery manager (for
	// manual Crash/Restore via Recovery()).
	CheckpointEvery int
	// DataDir enables the durable storage tier: the recovery manager's
	// command log becomes a segmented on-disk WAL with per-bucket checkpoint
	// images under this directory. If the directory already holds a previous
	// life's state, Start cold-starts the engine from it *instead of*
	// running Bootstrap — the data outlives the process. Implies a recovery
	// manager even without a crash schedule.
	DataDir string
}

// Stats summarizes the runtime's decision activity.
type Stats struct {
	// Decisions counts controller decisions accepted for execution.
	Decisions int64
	// Moves counts reconfigurations actually started.
	Moves int64
	// Failures counts controller errors plus failed reconfigurations.
	Failures int64
	// Emergencies counts decisions flagged as emergency scale-outs.
	Emergencies int64
}

// ErrMoveInFlight is returned by Reconfigure while another move is running.
var ErrMoveInFlight = errors.New("cluster: a reconfiguration is already in flight")

// errCoordinatorSubmit is returned by the Submit family in coordinator mode:
// a remote-topology cluster plans and migrates, but transactions enter
// through the node front ends, not through the coordinator.
var errCoordinatorSubmit = errors.New("cluster: coordinator has no local engine")

// Cluster owns the serving stack and its monitoring/decision loop. The
// controllers, the event stream and the recovery plane all run against a
// transport.Topology, so the same runtime drives a single-process engine
// (New) or a coordinator over multi-process node groups (NewRemote) without
// knowing where partitions live.
type Cluster struct {
	cfg Config
	// eng is the local engine, nil in coordinator mode.
	eng *store.Engine
	// topo is the placement-oblivious surface every decision reads.
	topo transport.Topology
	// hasRecovery reports whether topo serves the crash/restore plane.
	hasRecovery bool
	ex          *squall.Executor
	rec         *metrics.Recorder
	rm          *recovery.Manager
	// coldStart records the rebuild Start performed when the data directory
	// held a previous life's state; nil after a fresh bootstrap.
	coldStart *recovery.ColdStartStats

	// down maps a crashed machine to the cycle its recovery begins. It is
	// owned exclusively by the decision-loop goroutine.
	down map[int]int

	mu       sync.Mutex
	started  bool
	stopping bool
	cancel   func()
	loopDone chan struct{}
	moving   bool // single owner of move state; guarded by mu
	moveSeq  int
	moveWG   sync.WaitGroup
	// outcomes queues finished-move results for the decision loop, which
	// delivers them to a MoveObserver controller on its own goroutine so
	// controller state is never touched concurrently. Guarded by mu.
	outcomes []moveOutcome

	stopOnce sync.Once

	subMu  sync.Mutex
	subs   map[int]chan Event
	nextID int

	decisions   atomic.Int64
	moves       atomic.Int64
	failures    atomic.Int64
	emergencies atomic.Int64
}

// New builds the serving stack. The engine is not started; register
// transactions on Engine() first, then call Start.
func New(cfg Config) (*Cluster, error) {
	if cfg.RateScale == 0 {
		cfg.RateScale = 1
	}
	if cfg.RateScale < 0 {
		return nil, fmt.Errorf("cluster: RateScale %v must be positive", cfg.RateScale)
	}
	if cfg.CycleTraceMinutes == 0 {
		cfg.CycleTraceMinutes = 1
	}
	if cfg.CycleTraceMinutes < 0 {
		return nil, fmt.Errorf("cluster: CycleTraceMinutes %v must be positive", cfg.CycleTraceMinutes)
	}
	if cfg.Controller != nil && cfg.Cycle <= 0 {
		return nil, fmt.Errorf("cluster: Cycle %v must be positive when a controller is set", cfg.Cycle)
	}
	if cfg.Crash != nil {
		if err := cfg.Crash.Validate(); err != nil {
			return nil, err
		}
		if cfg.Crash.Empty() {
			cfg.Crash = nil
		}
	}
	if cfg.Crash != nil && cfg.Cycle <= 0 {
		return nil, fmt.Errorf("cluster: Cycle %v must be positive when a crash schedule is armed", cfg.Cycle)
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("cluster: CheckpointEvery %d must be non-negative", cfg.CheckpointEvery)
	}
	if cfg.Crash != nil && cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 10
	}
	eng, err := store.NewEngine(cfg.Engine)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, eng: eng, subs: map[int]chan Event{}}
	if cfg.Crash != nil || cfg.CheckpointEvery > 0 || cfg.DataDir != "" {
		// The manager attaches to the command-log hook now, before Start,
		// so bootstrap writes are logged and every machine is recoverable
		// from the first transaction on.
		c.rm, err = recovery.New(eng, recovery.Config{DataDir: cfg.DataDir})
		if err != nil {
			return nil, err
		}
		c.down = map[int]int{}
		c.hasRecovery = true
	}
	c.topo = transport.NewLocal(eng, c.rm)
	c.ex, err = squall.NewExecutor(c.topo, cfg.Squall)
	if err != nil {
		return nil, err
	}
	if cfg.FaultInjector != nil {
		c.topo.SetFaultInjector(cfg.FaultInjector)
	}
	return c, nil
}

// NewRemote builds the serving runtime in coordinator mode: the same
// decision loop, event stream and crash plane, but over a multi-process
// topology instead of a local engine. The coordinator executes migrations
// and drives crash recovery through node RPCs; transactions are submitted
// directly to the node front ends, so Submit and friends are unavailable.
// Bootstrap and RecorderWindow require a local engine and are rejected.
func NewRemote(cfg Config, topo transport.Topology) (*Cluster, error) {
	if topo == nil {
		return nil, errors.New("cluster: NewRemote needs a topology")
	}
	if cfg.Bootstrap != nil {
		return nil, errors.New("cluster: Bootstrap requires a local engine; load through the node front ends")
	}
	if cfg.RecorderWindow > 0 {
		return nil, errors.New("cluster: RecorderWindow requires a local engine")
	}
	// The geometry comes from the topology (which took it from the nodes),
	// never from flags that could drift.
	cfg.Engine = topo.Config()
	if cfg.RateScale == 0 {
		cfg.RateScale = 1
	}
	if cfg.RateScale < 0 {
		return nil, fmt.Errorf("cluster: RateScale %v must be positive", cfg.RateScale)
	}
	if cfg.CycleTraceMinutes == 0 {
		cfg.CycleTraceMinutes = 1
	}
	if cfg.CycleTraceMinutes < 0 {
		return nil, fmt.Errorf("cluster: CycleTraceMinutes %v must be positive", cfg.CycleTraceMinutes)
	}
	if cfg.Controller != nil && cfg.Cycle <= 0 {
		return nil, fmt.Errorf("cluster: Cycle %v must be positive when a controller is set", cfg.Cycle)
	}
	if cfg.Crash != nil {
		if err := cfg.Crash.Validate(); err != nil {
			return nil, err
		}
		if cfg.Crash.Empty() {
			cfg.Crash = nil
		}
	}
	if cfg.Crash != nil && cfg.Cycle <= 0 {
		return nil, fmt.Errorf("cluster: Cycle %v must be positive when a crash schedule is armed", cfg.Cycle)
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("cluster: CheckpointEvery %d must be non-negative", cfg.CheckpointEvery)
	}
	if cfg.Crash != nil && cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 10
	}
	c := &Cluster{cfg: cfg, topo: topo, subs: map[int]chan Event{}}
	if cfg.Crash != nil || cfg.CheckpointEvery > 0 {
		// The crash plane is armed exactly as in New; the node processes
		// must therefore run with recovery managers attached.
		c.down = map[int]int{}
		c.hasRecovery = true
	}
	var err error
	c.ex, err = squall.NewExecutor(topo, cfg.Squall)
	if err != nil {
		return nil, err
	}
	if cfg.FaultInjector != nil {
		topo.SetFaultInjector(cfg.FaultInjector)
	}
	return c, nil
}

// moveOutcome is one finished move's result, queued for the decision loop.
type moveOutcome struct {
	target int
	err    error
}

// Engine exposes the storage engine for transaction registration and driver
// attachment. Register transactions before Start. Nil in coordinator mode.
func (c *Cluster) Engine() *store.Engine { return c.eng }

// Topology exposes the placement surface the runtime operates on: a Local
// wrapper in single-process mode, the caller's Remote in coordinator mode.
func (c *Cluster) Topology() transport.Topology { return c.topo }

// Recorder returns the latency recorder, or nil before Start or when no
// RecorderWindow was configured. It stays readable after Stop.
func (c *Cluster) Recorder() *metrics.Recorder {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rec
}

// Recovery returns the crash-recovery manager, or nil when the cluster runs
// without one (no crash schedule and no checkpoint interval configured).
func (c *Cluster) Recovery() *recovery.Manager { return c.rm }

// ColdStart returns the stats of the cold start Start performed, or nil if
// the cluster bootstrapped fresh data.
func (c *Cluster) ColdStart() *recovery.ColdStartStats { return c.coldStart }

// Stats snapshots the runtime's decision counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		Decisions:   c.decisions.Load(),
		Moves:       c.moves.Load(),
		Failures:    c.failures.Load(),
		Emergencies: c.emergencies.Load(),
	}
}

// Start boots the engine, runs Bootstrap, attaches the recorder and starts
// the monitoring/decision loop. The loop stops when ctx is cancelled or
// Stop is called.
func (c *Cluster) Start(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return errors.New("cluster: already started")
	}
	if c.stopping {
		return errors.New("cluster: already stopped")
	}
	if c.eng != nil {
		c.eng.Start()
		if c.rm != nil && c.rm.HasColdState() {
			// The data directory holds a previous life's state: rebuild the
			// whole engine from disk instead of bootstrapping fresh data.
			st, err := c.rm.ColdStart()
			if err != nil {
				return fmt.Errorf("cluster: cold start: %w", err)
			}
			c.coldStart = &st
		} else if c.cfg.Bootstrap != nil {
			if err := c.cfg.Bootstrap(c.eng); err != nil {
				return fmt.Errorf("cluster: bootstrap: %w", err)
			}
		}
		if c.cfg.RecorderWindow > 0 {
			rec, err := metrics.NewRecorder(time.Now(), c.cfg.RecorderWindow)
			if err != nil {
				return err
			}
			c.rec = rec
			c.eng.SetRecorder(rec)
			c.ex.SetRecorder(rec)
			if c.rm != nil {
				c.rm.SetRecorder(rec)
			}
			rec.RecordMachines(time.Now(), c.topo.ActiveMachines())
		}
	}
	if c.hasRecovery {
		// Baseline checkpoint: the bootstrap data set becomes the image and
		// its command log is truncated, so the first crash replays only the
		// live traffic since Start.
		if _, err := c.topo.Checkpoint(); err != nil {
			return fmt.Errorf("cluster: initial checkpoint: %w", err)
		}
	}
	c.started = true
	if c.cfg.Controller != nil || c.cfg.Crash != nil {
		loopCtx, cancel := context.WithCancel(ctx)
		c.cancel = cancel
		c.loopDone = make(chan struct{})
		go c.loop(loopCtx)
	}
	return nil
}

// Stop halts the decision loop, drains any in-flight move, detaches the
// recorder and shuts the engine down. It is idempotent and safe to call
// concurrently.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		c.mu.Lock()
		c.stopping = true
		cancel, loopDone := c.cancel, c.loopDone
		c.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		if loopDone != nil {
			<-loopDone
		}
		c.moveWG.Wait()
		c.ex.SetRecorder(nil)
		if c.eng != nil {
			c.eng.SetRecorder(nil)
			c.eng.Stop()
			if c.rm != nil {
				// Release the WAL's active segment (everything acknowledged
				// is already durable; this flushes nothing).
				_ = c.rm.Close()
			}
		} else {
			// Coordinator mode: release topology resources; the node
			// processes keep serving.
			_ = c.topo.Close()
		}
		c.subMu.Lock()
		for id, ch := range c.subs {
			close(ch)
			delete(c.subs, id)
		}
		c.subMu.Unlock()
	})
}

// Submit routes one transaction through the engine and blocks until it
// completes. It is safe for concurrent use. Hot loops should resolve a
// Handle once and call SubmitID.
func (c *Cluster) Submit(name, key string, args any) (any, error) {
	if c.eng == nil {
		return nil, errCoordinatorSubmit
	}
	return c.eng.Execute(name, key, args)
}

// Handle resolves a registered transaction name to its dense engine id.
func (c *Cluster) Handle(name string) (store.TxnID, bool) {
	if c.eng == nil {
		return 0, false
	}
	return c.eng.Handle(name)
}

// SubmitID routes a pre-resolved transaction through the engine's
// allocation-free hot path and blocks until it completes.
func (c *Cluster) SubmitID(id store.TxnID, key string, args any) (any, error) {
	if c.eng == nil {
		return nil, errCoordinatorSubmit
	}
	return c.eng.ExecuteID(id, key, args)
}

// SubmitIDContext is SubmitID with a bounded submission wait: if ctx ends
// before the transaction is accepted into a partition queue, the submission
// is refused as overload. It is the entry point the network front end uses
// to propagate per-request wire deadlines into the engine.
func (c *Cluster) SubmitIDContext(ctx context.Context, id store.TxnID, key string, args any) (any, error) {
	if c.eng == nil {
		return nil, errCoordinatorSubmit
	}
	return c.eng.ExecuteIDContext(ctx, id, key, args)
}

// Subscribe registers an event observer. Events are delivered in emission
// order on a channel with the given buffer (minimum 16); a subscriber that
// falls behind loses the events that no longer fit rather than stalling the
// runtime. The returned cancel function unsubscribes and closes the
// channel; the channel is also closed by Stop.
func (c *Cluster) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer < 16 {
		buffer = 16
	}
	ch := make(chan Event, buffer)
	c.subMu.Lock()
	id := c.nextID
	c.nextID++
	c.subs[id] = ch
	c.subMu.Unlock()
	return ch, func() {
		c.subMu.Lock()
		defer c.subMu.Unlock()
		if sub, ok := c.subs[id]; ok {
			delete(c.subs, id)
			close(sub)
		}
	}
}

// publish fans an event out to every subscriber, dropping it for
// subscribers whose buffer is full.
func (c *Cluster) publish(e Event) {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	for _, ch := range c.subs {
		select {
		case ch <- e:
		default:
		}
	}
}

// Reconfigure executes a manual move to the target machine count at the
// given migration rate (<= 0 uses the configured default) and blocks until
// it completes. It shares the single-move-at-a-time invariant with the
// decision loop: ErrMoveInFlight is returned if a move is already running.
func (c *Cluster) Reconfigure(target int, rateFactor float64) error {
	done, err := c.beginMove(target, rateFactor, false)
	if err != nil {
		return err
	}
	if done == nil { // no-op move
		return nil
	}
	return <-done
}

// beginMove starts a reconfiguration in the background. It returns a
// channel that receives the move's result, or a nil channel for a no-op
// (target already active). The caller must not hold c.mu.
func (c *Cluster) beginMove(target int, rateFactor float64, emergency bool) (<-chan error, error) {
	c.mu.Lock()
	if !c.started || c.stopping {
		c.mu.Unlock()
		return nil, errors.New("cluster: not running")
	}
	if c.moving {
		c.mu.Unlock()
		return nil, ErrMoveInFlight
	}
	from := c.topo.ActiveMachines()
	if target == from {
		c.mu.Unlock()
		return nil, nil
	}
	c.moving = true
	c.moveSeq++
	seq := c.moveSeq
	c.moveWG.Add(1)
	c.mu.Unlock()

	c.moves.Add(1)
	c.publish(MoveStarted{Time: time.Now(), Seq: seq, From: from, To: target, RateFactor: rateFactor, Emergency: emergency})
	done := make(chan error, 1)
	go func() {
		start := time.Now()
		err := c.ex.Reconfigure(from, target, rateFactor)
		if err != nil {
			c.failures.Add(1)
		}
		c.mu.Lock()
		c.moving = false
		c.outcomes = append(c.outcomes, moveOutcome{target: target, err: err})
		c.mu.Unlock()
		if err != nil {
			rolledBack := true
			var me *squall.MoveError
			if errors.As(err, &me) {
				rolledBack = me.RolledBack
			}
			c.publish(MoveFailed{Time: time.Now(), Seq: seq, From: from, To: target,
				Duration: time.Since(start), Err: err, RolledBack: rolledBack})
		} else {
			c.publish(MoveFinished{Time: time.Now(), Seq: seq, From: from, To: target, Duration: time.Since(start)})
		}
		done <- err
		c.moveWG.Done()
	}()
	return done, nil
}

// loop is the monitoring/decision cycle (Section 6): every Cycle it drives
// the crash plane (recoveries due, scheduled crashes, periodic checkpoints),
// measures the load offered since the previous tick, converts it to paper
// units, and asks the controller whether to reconfigure. Decisions execute
// in the background through the Squall executor, one at a time.
func (c *Cluster) loop(ctx context.Context) {
	defer close(c.loopDone)
	ticker := time.NewTicker(c.cfg.Cycle)
	defer ticker.Stop()
	// Start from the current counters so bootstrap work does not masquerade
	// as offered load on the first cycle.
	last := c.topo.Counters()
	for cycle := 0; ; cycle++ {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		c.recoveryTick(cycle)
		if c.cfg.Controller == nil {
			continue
		}
		cnt := c.topo.Counters()
		delta := cnt.Submitted - last.Submitted
		// Refused work per cycle is the backpressure signal: the engine only
		// rejects/sheds when past capacity, so any nonzero count is direct
		// evidence the provisioning plan is behind the actual load.
		sig := elastic.OverloadSignal{
			Rejected:         cnt.Rejected - last.Rejected,
			Shed:             cnt.Shed - last.Shed,
			DeadlineExceeded: cnt.DeadlineExceeded - last.DeadlineExceeded,
			QueueDelay:       c.topo.MaxQueueSojourn(),
		}
		last = cnt
		load := float64(delta) / c.cfg.RateScale / c.cfg.CycleTraceMinutes
		c.mu.Lock()
		busy := c.moving
		outcomes := c.outcomes
		c.outcomes = nil
		c.mu.Unlock()
		// Deliver finished-move results before the controller decides, on
		// this goroutine, so a MoveObserver controller learns a move died
		// (and can re-plan around the misprediction) without ever being
		// called concurrently with its own Tick.
		if obs, ok := c.cfg.Controller.(elastic.MoveObserver); ok {
			for _, o := range outcomes {
				obs.MoveResult(o.target, o.err)
			}
		}
		if sig.Refused() > 0 {
			c.publish(OverloadObserved{Time: time.Now(), Cycle: cycle, Rejected: sig.Rejected,
				Shed: sig.Shed, DeadlineExceeded: sig.DeadlineExceeded, QueueDelay: sig.QueueDelay})
		}
		// The overload signal is delivered every cycle — zero included, so
		// observers can track recovery — on this goroutine, before Tick.
		if obs, ok := c.cfg.Controller.(elastic.OverloadObserver); ok {
			obs.Overloaded(sig)
		}
		machines := c.topo.ActiveMachines()
		// The controller plans in units of capacity it can actually use:
		// crashed machines serve nothing, so it sees the effective size and
		// its targets are translated back below (the paper's Eq. 7 capacity
		// term shrinks the same way when machines disappear).
		downCount := len(c.down)
		effective := machines - downCount
		if effective < 1 {
			effective = 1
		}
		c.publish(LoadObserved{Time: time.Now(), Cycle: cycle, Machines: machines, Load: load, Down: downCount, Reconfiguring: busy})
		dec, err := c.cfg.Controller.Tick(effective, busy, load)
		if err != nil {
			c.failures.Add(1)
			c.publish(DecisionFailed{Time: time.Now(), Cycle: cycle, Err: err})
			continue
		}
		if dec == nil || busy {
			continue
		}
		// Translate the effective target back to a raw machine count: the
		// down machines still occupy slots, they just do not serve.
		target := dec.Target + downCount
		if max := c.cfg.Engine.MaxMachines; target > max {
			target = max
		}
		if target == machines {
			continue
		}
		if m, blocked := c.drainBlocked(target); blocked {
			// A scale-in below a down machine's slot would have to drain a
			// dead machine; wait for its recovery instead.
			c.failures.Add(1)
			c.publish(DecisionFailed{Time: time.Now(), Cycle: cycle,
				Err: fmt.Errorf("cluster: scale-in to %d machines would drain down machine %d", target, m)})
			continue
		}
		c.decisions.Add(1)
		rate := dec.RateFactor
		if dec.Emergency {
			c.emergencies.Add(1)
			c.publish(EmergencyTriggered{Time: time.Now(), Cycle: cycle, Target: target, RateFactor: rate})
			if c.cfg.SpikeRateFactor > 0 {
				rate = c.cfg.SpikeRateFactor
			}
		}
		if _, err := c.beginMove(target, rate, dec.Emergency); err != nil {
			// Lost a race with a manual Reconfigure; skip this cycle.
			c.failures.Add(1)
		}
	}
}

// recoveryTick drives the crash plane for one monitoring cycle: machines
// whose downtime elapsed are restored, the crash schedule fires, and the
// periodic checkpoint runs. It runs on the loop goroutine, the sole owner of
// c.down, so FailureObserver callbacks are never concurrent with Tick.
func (c *Cluster) recoveryTick(cycle int) {
	if !c.hasRecovery {
		return
	}
	obs, _ := c.cfg.Controller.(elastic.FailureObserver)
	for _, m := range c.downDue(cycle) {
		st, err := c.topo.Restore(m)
		if err != nil {
			// Still down; retried next cycle.
			c.failures.Add(1)
			continue
		}
		delete(c.down, m)
		c.publish(MachineRecovered{Time: time.Now(), Cycle: cycle, Machine: m,
			Downtime: st.Downtime, Replayed: st.Replayed})
		if obs != nil {
			obs.MachineRecovered(m)
		}
	}
	if c.cfg.Crash != nil {
		for _, pc := range c.cfg.Crash.CrashesAt(cycle, c.topo.ActiveMachines()) {
			if _, dead := c.down[pc.Machine]; dead {
				continue
			}
			if err := c.topo.Crash(pc.Machine); err != nil {
				c.failures.Add(1)
				continue
			}
			recoverAt := cycle + c.cfg.Crash.DowntimeFor(pc)
			c.down[pc.Machine] = recoverAt
			c.publish(MachineFailed{Time: time.Now(), Cycle: cycle, Machine: pc.Machine, RecoverAtCycle: recoverAt})
			if obs != nil {
				obs.MachineFailed(pc.Machine)
			}
		}
	}
	if every := c.cfg.CheckpointEvery; every > 0 && cycle > 0 && cycle%every == 0 {
		if _, err := c.topo.Checkpoint(); err != nil {
			c.failures.Add(1)
		}
	}
}

// downDue lists the crashed machines whose recovery cycle arrived, in
// machine order so event emission is deterministic.
func (c *Cluster) downDue(cycle int) []int {
	var due []int
	for m, at := range c.down {
		if at <= cycle {
			due = append(due, m)
		}
	}
	sort.Ints(due)
	return due
}

// drainBlocked reports whether scaling to target would require draining a
// crashed machine (any down machine whose slot is at or beyond the target).
func (c *Cluster) drainBlocked(target int) (int, bool) {
	blocked, found := -1, false
	for m := range c.down {
		if m >= target && (!found || m < blocked) {
			blocked, found = m, true
		}
	}
	return blocked, found
}
