// Package cluster is the P-Store serving runtime: it assembles the full
// stack the paper runs as one closed loop (Section 6, Figures 9-11) — the
// partitioned storage engine, the Squall migration executor, the latency
// recorder, and a provisioning controller — behind a single lifecycle.
//
// A Cluster is the sole owner of move execution: the monitoring/decision
// loop observes the aggregate load once per cycle, consults the controller,
// and executes at most one reconfiguration at a time through the executor.
// Observers subscribe to a typed event stream (MoveStarted, MoveFinished,
// DecisionFailed, EmergencyTriggered, per-cycle LoadObserved) instead of
// reaching into engine counters or executor state.
//
// Lifecycle: New(Config) builds the stack; register transactions on
// Engine() before Start; Start(ctx) boots the engine, runs the optional
// Bootstrap loader, attaches the recorder and launches the decision loop;
// Stop() halts the loop, drains any in-flight move, detaches the recorder
// and shuts the engine down.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/elastic"
	"pstore/internal/metrics"
	"pstore/internal/squall"
	"pstore/internal/store"
)

// Config assembles a Cluster.
type Config struct {
	// Engine sizes the storage substrate.
	Engine store.Config
	// Squall tunes migration chunking and throttling.
	Squall squall.Config
	// Controller decides, once per Cycle, whether to reconfigure. Nil runs
	// a static cluster (no monitoring loop).
	Controller elastic.Controller
	// Cycle is the wall time between controller ticks. Required when a
	// Controller is set.
	Cycle time.Duration
	// RateScale converts paper-unit requests into substrate transactions:
	// observed transaction counts are divided by it before reaching the
	// controller. Zero means 1 (controller sees raw transactions).
	RateScale float64
	// CycleTraceMinutes is how many trace minutes one cycle spans; the
	// observed load is averaged over it so the controller sees requests per
	// trace minute. Zero means 1.
	CycleTraceMinutes float64
	// SpikeRateFactor overrides the migration rate of emergency moves (the
	// paper's "rate R x 8" study, Figure 11). Zero keeps each decision's
	// own rate.
	SpikeRateFactor float64
	// RecorderWindow is the latency recorder's aggregation window. Zero
	// runs without a recorder.
	RecorderWindow time.Duration
	// Bootstrap, if set, runs during Start after the engine boots but
	// before the recorder attaches and the decision loop begins — the place
	// to load data so bulk loading is neither measured nor mistaken for
	// offered load.
	Bootstrap func(*store.Engine) error
	// FaultInjector, if set, is attached to the engine's migration path
	// for chaos runs (see internal/faults). Failed moves roll back and
	// surface as MoveFailed events; the runtime itself keeps serving.
	FaultInjector store.FaultInjector
}

// Stats summarizes the runtime's decision activity.
type Stats struct {
	// Decisions counts controller decisions accepted for execution.
	Decisions int64
	// Moves counts reconfigurations actually started.
	Moves int64
	// Failures counts controller errors plus failed reconfigurations.
	Failures int64
	// Emergencies counts decisions flagged as emergency scale-outs.
	Emergencies int64
}

// ErrMoveInFlight is returned by Reconfigure while another move is running.
var ErrMoveInFlight = errors.New("cluster: a reconfiguration is already in flight")

// Cluster owns the serving stack and its monitoring/decision loop.
type Cluster struct {
	cfg Config
	eng *store.Engine
	ex  *squall.Executor
	rec *metrics.Recorder

	mu       sync.Mutex
	started  bool
	stopping bool
	cancel   func()
	loopDone chan struct{}
	moving   bool // single owner of move state; guarded by mu
	moveSeq  int
	moveWG   sync.WaitGroup
	// outcomes queues finished-move results for the decision loop, which
	// delivers them to a MoveObserver controller on its own goroutine so
	// controller state is never touched concurrently. Guarded by mu.
	outcomes []moveOutcome

	stopOnce sync.Once

	subMu  sync.Mutex
	subs   map[int]chan Event
	nextID int

	decisions   atomic.Int64
	moves       atomic.Int64
	failures    atomic.Int64
	emergencies atomic.Int64
}

// New builds the serving stack. The engine is not started; register
// transactions on Engine() first, then call Start.
func New(cfg Config) (*Cluster, error) {
	if cfg.RateScale == 0 {
		cfg.RateScale = 1
	}
	if cfg.RateScale < 0 {
		return nil, fmt.Errorf("cluster: RateScale %v must be positive", cfg.RateScale)
	}
	if cfg.CycleTraceMinutes == 0 {
		cfg.CycleTraceMinutes = 1
	}
	if cfg.CycleTraceMinutes < 0 {
		return nil, fmt.Errorf("cluster: CycleTraceMinutes %v must be positive", cfg.CycleTraceMinutes)
	}
	if cfg.Controller != nil && cfg.Cycle <= 0 {
		return nil, fmt.Errorf("cluster: Cycle %v must be positive when a controller is set", cfg.Cycle)
	}
	eng, err := store.NewEngine(cfg.Engine)
	if err != nil {
		return nil, err
	}
	ex, err := squall.NewExecutor(eng, cfg.Squall)
	if err != nil {
		return nil, err
	}
	if cfg.FaultInjector != nil {
		eng.SetFaultInjector(cfg.FaultInjector)
	}
	return &Cluster{cfg: cfg, eng: eng, ex: ex, subs: map[int]chan Event{}}, nil
}

// moveOutcome is one finished move's result, queued for the decision loop.
type moveOutcome struct {
	target int
	err    error
}

// Engine exposes the storage engine for transaction registration and driver
// attachment. Register transactions before Start.
func (c *Cluster) Engine() *store.Engine { return c.eng }

// Recorder returns the latency recorder, or nil before Start or when no
// RecorderWindow was configured. It stays readable after Stop.
func (c *Cluster) Recorder() *metrics.Recorder {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rec
}

// Stats snapshots the runtime's decision counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		Decisions:   c.decisions.Load(),
		Moves:       c.moves.Load(),
		Failures:    c.failures.Load(),
		Emergencies: c.emergencies.Load(),
	}
}

// Start boots the engine, runs Bootstrap, attaches the recorder and starts
// the monitoring/decision loop. The loop stops when ctx is cancelled or
// Stop is called.
func (c *Cluster) Start(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return errors.New("cluster: already started")
	}
	if c.stopping {
		return errors.New("cluster: already stopped")
	}
	c.eng.Start()
	if c.cfg.Bootstrap != nil {
		if err := c.cfg.Bootstrap(c.eng); err != nil {
			return fmt.Errorf("cluster: bootstrap: %w", err)
		}
	}
	if c.cfg.RecorderWindow > 0 {
		rec, err := metrics.NewRecorder(time.Now(), c.cfg.RecorderWindow)
		if err != nil {
			return err
		}
		c.rec = rec
		c.eng.SetRecorder(rec)
		c.ex.SetRecorder(rec)
		rec.RecordMachines(time.Now(), c.eng.ActiveMachines())
	}
	c.started = true
	if c.cfg.Controller != nil {
		loopCtx, cancel := context.WithCancel(ctx)
		c.cancel = cancel
		c.loopDone = make(chan struct{})
		go c.loop(loopCtx)
	}
	return nil
}

// Stop halts the decision loop, drains any in-flight move, detaches the
// recorder and shuts the engine down. It is idempotent and safe to call
// concurrently.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		c.mu.Lock()
		c.stopping = true
		cancel, loopDone := c.cancel, c.loopDone
		c.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		if loopDone != nil {
			<-loopDone
		}
		c.moveWG.Wait()
		c.eng.SetRecorder(nil)
		c.ex.SetRecorder(nil)
		c.eng.Stop()
		c.subMu.Lock()
		for id, ch := range c.subs {
			close(ch)
			delete(c.subs, id)
		}
		c.subMu.Unlock()
	})
}

// Submit routes one transaction through the engine and blocks until it
// completes. It is safe for concurrent use. Hot loops should resolve a
// Handle once and call SubmitID.
func (c *Cluster) Submit(name, key string, args any) (any, error) {
	return c.eng.Execute(name, key, args)
}

// Handle resolves a registered transaction name to its dense engine id.
func (c *Cluster) Handle(name string) (store.TxnID, bool) {
	return c.eng.Handle(name)
}

// SubmitID routes a pre-resolved transaction through the engine's
// allocation-free hot path and blocks until it completes.
func (c *Cluster) SubmitID(id store.TxnID, key string, args any) (any, error) {
	return c.eng.ExecuteID(id, key, args)
}

// Subscribe registers an event observer. Events are delivered in emission
// order on a channel with the given buffer (minimum 16); a subscriber that
// falls behind loses the events that no longer fit rather than stalling the
// runtime. The returned cancel function unsubscribes and closes the
// channel; the channel is also closed by Stop.
func (c *Cluster) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer < 16 {
		buffer = 16
	}
	ch := make(chan Event, buffer)
	c.subMu.Lock()
	id := c.nextID
	c.nextID++
	c.subs[id] = ch
	c.subMu.Unlock()
	return ch, func() {
		c.subMu.Lock()
		defer c.subMu.Unlock()
		if sub, ok := c.subs[id]; ok {
			delete(c.subs, id)
			close(sub)
		}
	}
}

// publish fans an event out to every subscriber, dropping it for
// subscribers whose buffer is full.
func (c *Cluster) publish(e Event) {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	for _, ch := range c.subs {
		select {
		case ch <- e:
		default:
		}
	}
}

// Reconfigure executes a manual move to the target machine count at the
// given migration rate (<= 0 uses the configured default) and blocks until
// it completes. It shares the single-move-at-a-time invariant with the
// decision loop: ErrMoveInFlight is returned if a move is already running.
func (c *Cluster) Reconfigure(target int, rateFactor float64) error {
	done, err := c.beginMove(target, rateFactor, false)
	if err != nil {
		return err
	}
	if done == nil { // no-op move
		return nil
	}
	return <-done
}

// beginMove starts a reconfiguration in the background. It returns a
// channel that receives the move's result, or a nil channel for a no-op
// (target already active). The caller must not hold c.mu.
func (c *Cluster) beginMove(target int, rateFactor float64, emergency bool) (<-chan error, error) {
	c.mu.Lock()
	if !c.started || c.stopping {
		c.mu.Unlock()
		return nil, errors.New("cluster: not running")
	}
	if c.moving {
		c.mu.Unlock()
		return nil, ErrMoveInFlight
	}
	from := c.eng.ActiveMachines()
	if target == from {
		c.mu.Unlock()
		return nil, nil
	}
	c.moving = true
	c.moveSeq++
	seq := c.moveSeq
	c.moveWG.Add(1)
	c.mu.Unlock()

	c.moves.Add(1)
	c.publish(MoveStarted{Time: time.Now(), Seq: seq, From: from, To: target, RateFactor: rateFactor, Emergency: emergency})
	done := make(chan error, 1)
	go func() {
		start := time.Now()
		err := c.ex.Reconfigure(from, target, rateFactor)
		if err != nil {
			c.failures.Add(1)
		}
		c.mu.Lock()
		c.moving = false
		c.outcomes = append(c.outcomes, moveOutcome{target: target, err: err})
		c.mu.Unlock()
		if err != nil {
			rolledBack := true
			var me *squall.MoveError
			if errors.As(err, &me) {
				rolledBack = me.RolledBack
			}
			c.publish(MoveFailed{Time: time.Now(), Seq: seq, From: from, To: target,
				Duration: time.Since(start), Err: err, RolledBack: rolledBack})
		} else {
			c.publish(MoveFinished{Time: time.Now(), Seq: seq, From: from, To: target, Duration: time.Since(start)})
		}
		done <- err
		c.moveWG.Done()
	}()
	return done, nil
}

// loop is the monitoring/decision cycle (Section 6): every Cycle it
// measures the load offered since the previous tick, converts it to paper
// units, and asks the controller whether to reconfigure. Decisions execute
// in the background through the Squall executor, one at a time.
func (c *Cluster) loop(ctx context.Context) {
	defer close(c.loopDone)
	ticker := time.NewTicker(c.cfg.Cycle)
	defer ticker.Stop()
	// Start from the current counter so bootstrap work does not masquerade
	// as offered load on the first cycle.
	last := c.eng.Counters().Submitted
	for cycle := 0; ; cycle++ {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		sub := c.eng.Counters().Submitted
		delta := sub - last
		last = sub
		load := float64(delta) / c.cfg.RateScale / c.cfg.CycleTraceMinutes
		c.mu.Lock()
		busy := c.moving
		outcomes := c.outcomes
		c.outcomes = nil
		c.mu.Unlock()
		// Deliver finished-move results before the controller decides, on
		// this goroutine, so a MoveObserver controller learns a move died
		// (and can re-plan around the misprediction) without ever being
		// called concurrently with its own Tick.
		if obs, ok := c.cfg.Controller.(elastic.MoveObserver); ok {
			for _, o := range outcomes {
				obs.MoveResult(o.target, o.err)
			}
		}
		machines := c.eng.ActiveMachines()
		c.publish(LoadObserved{Time: time.Now(), Cycle: cycle, Machines: machines, Load: load, Reconfiguring: busy})
		dec, err := c.cfg.Controller.Tick(machines, busy, load)
		if err != nil {
			c.failures.Add(1)
			c.publish(DecisionFailed{Time: time.Now(), Cycle: cycle, Err: err})
			continue
		}
		if dec == nil || busy {
			continue
		}
		c.decisions.Add(1)
		rate := dec.RateFactor
		if dec.Emergency {
			c.emergencies.Add(1)
			c.publish(EmergencyTriggered{Time: time.Now(), Cycle: cycle, Target: dec.Target, RateFactor: rate})
			if c.cfg.SpikeRateFactor > 0 {
				rate = c.cfg.SpikeRateFactor
			}
		}
		if _, err := c.beginMove(dec.Target, rate, dec.Emergency); err != nil {
			// Lost a race with a manual Reconfigure; skip this cycle.
			c.failures.Add(1)
		}
	}
}
