package cluster

import (
	"context"
	"errors"
	"testing"

	"pstore/internal/store"
)

// TestSubmitIDContext checks the wire front end's entry point: a live
// context executes normally, and a context already expired at submission is
// refused with the typed errors the server maps to 429/504.
func TestSubmitIDContext(t *testing.T) {
	c, err := New(Config{Engine: testEngineConfig(), Squall: testSquallConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Engine().Register("noop", func(tx *store.Tx) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	id, ok := c.Engine().Handle("noop")
	if !ok {
		t.Fatal("noop not registered")
	}
	if _, err := c.SubmitIDContext(context.Background(), id, "key-1", nil); err != nil {
		t.Fatalf("live context: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = c.SubmitIDContext(ctx, id, "key-1", nil)
	if err == nil {
		t.Fatal("expired context: expected an error")
	}
	if !errors.Is(err, store.ErrOverload) && !errors.Is(err, store.ErrDeadlineExceeded) && !errors.Is(err, ctx.Err()) {
		t.Fatalf("expired context: error %v is not a typed refusal", err)
	}
}
