package cluster

import (
	"fmt"
	"time"
)

// Event is a typed notification from the cluster runtime. Observers
// subscribe with Cluster.Subscribe instead of polling engine counters or
// executor state; the runtime is the single owner of move execution, so the
// event stream is the authoritative record of what happened and when.
type Event interface {
	// When returns the time the event was emitted.
	When() time.Time
	event()
}

// LoadObserved is emitted once per monitoring cycle with the aggregate load
// measured over the cycle, before the controller is consulted.
type LoadObserved struct {
	Time time.Time
	// Cycle is the monitoring cycle index, starting at 0.
	Cycle int
	// Machines is the active cluster size at observation time.
	Machines int
	// Load is the observed load in controller units (requests per trace
	// minute at paper scale).
	Load float64
	// Down is how many of those machines were crashed at observation time;
	// the controller is shown the effective size (Machines - Down).
	Down int
	// Reconfiguring reports whether a move was in flight during the cycle.
	Reconfiguring bool
}

// MoveStarted is emitted when a reconfiguration begins executing.
type MoveStarted struct {
	Time time.Time
	// Seq numbers moves within this cluster's lifetime, starting at 1.
	Seq int
	// From and To are the source and target machine counts.
	From, To int
	// RateFactor is the migration rate multiplier actually used (after any
	// configured emergency override).
	RateFactor float64
	// Emergency marks a move issued because no feasible plan existed.
	Emergency bool
}

// MoveFinished is emitted when a reconfiguration completes successfully.
// Failed moves emit MoveFailed instead.
type MoveFinished struct {
	Time time.Time
	// Seq matches the MoveStarted event of the same move.
	Seq      int
	From, To int
	// Duration is the wall time the move took.
	Duration time.Duration
}

// MoveFailed is emitted when a reconfiguration aborts. The runtime stays
// usable: a failed move rolls back to the pre-move bucket plan, so the next
// decision (or a manual Reconfigure) can start a fresh move immediately.
type MoveFailed struct {
	Time time.Time
	// Seq matches the MoveStarted event of the same move.
	Seq      int
	From, To int
	// Duration is the wall time until the abort completed.
	Duration time.Duration
	// Err is the typed failure (a *squall.MoveError for aborted moves).
	Err error
	// RolledBack reports whether the pre-move bucket plan was restored.
	RolledBack bool
}

// DecisionFailed is emitted when the controller's Tick returns an error.
type DecisionFailed struct {
	Time  time.Time
	Cycle int
	Err   error
}

// EmergencyTriggered is emitted when the controller falls back to emergency
// scaling (an unpredicted spike, Section 4.3.1); the corresponding
// MoveStarted follows immediately.
type EmergencyTriggered struct {
	Time  time.Time
	Cycle int
	// Target is the emergency machine count.
	Target int
	// RateFactor is the rate the controller asked for, before any
	// SpikeRateFactor override.
	RateFactor float64
}

// OverloadObserved is emitted once per monitoring cycle in which the engine
// refused work: admission-control rejections, CoDel sheds, or queue-deadline
// expiries. The same signal is delivered to an OverloadObserver controller
// before its Tick.
type OverloadObserved struct {
	Time  time.Time
	Cycle int
	// Rejected, Shed and DeadlineExceeded are the cycle's refused-work
	// counts, by mechanism.
	Rejected         int64
	Shed             int64
	DeadlineExceeded int64
	// QueueDelay is the worst partition's estimated queueing delay at the
	// end of the cycle.
	QueueDelay time.Duration
}

// MachineFailed is emitted when the crash schedule takes a machine down. Its
// partitions refuse transactions (and migrations) until recovery; in-flight
// moves touching the machine abort and roll back.
type MachineFailed struct {
	Time  time.Time
	Cycle int
	// Machine is the crashed machine index.
	Machine int
	// RecoverAtCycle is the monitoring cycle at which recovery will begin.
	RecoverAtCycle int
}

// MachineRecovered is emitted when a crashed machine finishes recovery: its
// partitions were rebuilt from the last checkpoint plus command-log replay
// and serve again.
type MachineRecovered struct {
	Time  time.Time
	Cycle int
	// Machine is the recovered machine index.
	Machine int
	// Downtime is the wall time the machine was down.
	Downtime time.Duration
	// Replayed is the number of logged commands replayed during the rebuild.
	Replayed int
}

func (e LoadObserved) When() time.Time       { return e.Time }
func (e MoveStarted) When() time.Time        { return e.Time }
func (e MoveFinished) When() time.Time       { return e.Time }
func (e MoveFailed) When() time.Time         { return e.Time }
func (e DecisionFailed) When() time.Time     { return e.Time }
func (e EmergencyTriggered) When() time.Time { return e.Time }
func (e OverloadObserved) When() time.Time   { return e.Time }
func (e MachineFailed) When() time.Time      { return e.Time }
func (e MachineRecovered) When() time.Time   { return e.Time }

func (LoadObserved) event()       {}
func (MoveStarted) event()        {}
func (MoveFinished) event()       {}
func (MoveFailed) event()         {}
func (DecisionFailed) event()     {}
func (EmergencyTriggered) event() {}
func (OverloadObserved) event()   {}
func (MachineFailed) event()      {}
func (MachineRecovered) event()   {}

func (e LoadObserved) String() string {
	if e.Down > 0 {
		return fmt.Sprintf("cycle %d: load %.1f on %d machines (%d down, reconfiguring=%v)",
			e.Cycle, e.Load, e.Machines, e.Down, e.Reconfiguring)
	}
	return fmt.Sprintf("cycle %d: load %.1f on %d machines (reconfiguring=%v)",
		e.Cycle, e.Load, e.Machines, e.Reconfiguring)
}

func (e MoveStarted) String() string {
	kind := "move"
	if e.Emergency {
		kind = "emergency move"
	}
	return fmt.Sprintf("%s #%d started: %d -> %d machines (rate %gx)", kind, e.Seq, e.From, e.To, e.RateFactor)
}

func (e MoveFinished) String() string {
	return fmt.Sprintf("move #%d finished: %d -> %d machines in %v",
		e.Seq, e.From, e.To, e.Duration.Round(time.Millisecond))
}

func (e MoveFailed) String() string {
	state := "rolled back"
	if !e.RolledBack {
		state = "NOT rolled back"
	}
	return fmt.Sprintf("move #%d failed after %v (%s): %v",
		e.Seq, e.Duration.Round(time.Millisecond), state, e.Err)
}

func (e DecisionFailed) String() string {
	return fmt.Sprintf("cycle %d: controller error: %v", e.Cycle, e.Err)
}

func (e EmergencyTriggered) String() string {
	return fmt.Sprintf("cycle %d: emergency scaling to %d machines (controller rate %gx)",
		e.Cycle, e.Target, e.RateFactor)
}

func (e OverloadObserved) String() string {
	return fmt.Sprintf("cycle %d: overload: %d rejected, %d shed, %d deadline-exceeded (queue delay %v)",
		e.Cycle, e.Rejected, e.Shed, e.DeadlineExceeded, e.QueueDelay.Round(time.Millisecond))
}

func (e MachineFailed) String() string {
	return fmt.Sprintf("cycle %d: machine %d crashed (recovery at cycle %d)",
		e.Cycle, e.Machine, e.RecoverAtCycle)
}

func (e MachineRecovered) String() string {
	return fmt.Sprintf("cycle %d: machine %d recovered after %v (%d commands replayed)",
		e.Cycle, e.Machine, e.Downtime.Round(time.Millisecond), e.Replayed)
}
