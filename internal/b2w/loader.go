package b2w

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"pstore/internal/store"
)

// LoadSpec sizes the initial database. The paper's experiments run against
// roughly 1.1 GB of active carts and checkouts (Section 8.1); here sizes are
// row counts on the scaled substrate.
type LoadSpec struct {
	// Carts is the number of pre-created shopping carts.
	Carts int
	// Checkouts is the number of pre-created checkout objects.
	Checkouts int
	// Stocks is the number of SKUs in inventory.
	Stocks int
	// LinesPerCart is the mean number of lines per pre-created cart.
	LinesPerCart int
	// Seed makes loading reproducible.
	Seed int64
	// Loaders is the number of concurrent loading clients (defaults to 8).
	Loaders int
}

// DefaultLoadSpec returns a small database suitable for scaled experiments.
func DefaultLoadSpec() LoadSpec {
	return LoadSpec{Carts: 4000, Checkouts: 1000, Stocks: 2000, LinesPerCart: 3, Seed: 1, Loaders: 8}
}

// CartKey returns the cart id for index i.
func CartKey(i int) string { return fmt.Sprintf("cart-%08d", i) }

// CheckoutKey returns the checkout id for index i.
func CheckoutKey(i int) string { return fmt.Sprintf("checkout-%08d", i) }

// StockKey returns the SKU for index i.
func StockKey(i int) string { return fmt.Sprintf("sku-%08d", i) }

// StockTxKey returns the stock-transaction id for index i.
func StockTxKey(i int) string { return fmt.Sprintf("stocktx-%08d", i) }

// Load populates the engine with the initial carts, checkouts and stock
// through the regular transaction API. The engine must be started.
func Load(eng *store.Engine, spec LoadSpec) error {
	if spec.Carts < 0 || spec.Checkouts < 0 || spec.Stocks < 0 {
		return fmt.Errorf("b2w: negative load sizes")
	}
	loaders := spec.Loaders
	if loaders < 1 {
		loaders = 8
	}
	lines := max(spec.LinesPerCart, 1)

	// Resolve the bootstrap procedures' handles once up front.
	handles := make(map[string]store.TxnID, 3)
	for _, name := range []string{txnLoadStock, txnLoadCart, txnLoadCheckout} {
		id, ok := eng.Handle(name)
		if !ok {
			return fmt.Errorf("b2w: bootstrap transaction %s not registered", name)
		}
		handles[name] = id
	}

	type job struct {
		txn  store.TxnID
		name string
		key  string
		args any
	}
	jobs := make(chan job, 1024)
	var wg sync.WaitGroup
	errCh := make(chan error, loaders)
	for w := 0; w < loaders; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if _, err := eng.ExecuteID(j.txn, j.key, j.args); err != nil {
					if errors.Is(err, store.ErrNotOwned) {
						// Multi-process loading: every node runs the same
						// deterministic load; a key hosted elsewhere is that
						// node's to load.
						continue
					}
					select {
					case errCh <- fmt.Errorf("b2w: loading %s %s: %w", j.name, j.key, err):
					default:
					}
					return
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	for i := 0; i < spec.Stocks; i++ {
		jobs <- job{txn: handles[txnLoadStock], name: txnLoadStock, key: StockKey(i), args: StockItem{
			SKU:       StockKey(i),
			Available: 50 + rng.Intn(200),
		}}
	}
	for i := 0; i < spec.Carts; i++ {
		n := 1 + rng.Intn(2*lines-1)
		cart := Cart{Customer: fmt.Sprintf("customer-%06d", rng.Intn(1_000_000))}
		for l := 0; l < n; l++ {
			line := CartLine{
				SKU:       StockKey(rng.Intn(max(spec.Stocks, 1))),
				Quantity:  1 + rng.Intn(3),
				UnitPrice: int64(500 + rng.Intn(100000)),
			}
			cart.Lines = append(cart.Lines, line)
			cart.Total += int64(line.Quantity) * line.UnitPrice
		}
		jobs <- job{txn: handles[txnLoadCart], name: txnLoadCart, key: CartKey(i), args: cart}
	}
	for i := 0; i < spec.Checkouts; i++ {
		line := CartLine{
			SKU:       StockKey(rng.Intn(max(spec.Stocks, 1))),
			Quantity:  1,
			UnitPrice: int64(500 + rng.Intn(100000)),
		}
		jobs <- job{txn: handles[txnLoadCheckout], name: txnLoadCheckout, key: CheckoutKey(i), args: Checkout{
			CartID: CartKey(rng.Intn(max(spec.Carts, 1))),
			Lines:  []CartLine{line},
			Total:  int64(line.Quantity) * line.UnitPrice,
		}}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// Internal bootstrap procedures that install complete rows directly during
// bulk loading; registered by Register alongside the public transactions
// and configured with zero service time.
const (
	txnLoadStock    = "loadStock"
	txnLoadCart     = "loadCart"
	txnLoadCheckout = "loadCheckout"
)
