package b2w

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/metrics"
	"pstore/internal/store"
	"pstore/internal/workload"
)

// Mix assigns a relative weight to every transaction type; the driver draws
// each arrival's type proportionally. DefaultMix approximates an online
// retail flow: browsing and cart edits dominate, a fraction of sessions
// proceed through reservation and checkout.
type Mix map[string]float64

// DefaultMix returns the standard benchmark mix.
func DefaultMix() Mix {
	return Mix{
		TxnGetCart:                22,
		TxnAddLineToCart:          16,
		TxnDeleteLineFromCart:     3,
		TxnDeleteCart:             2,
		TxnReserveCart:            3,
		TxnGetStockQuantity:       14,
		TxnGetStock:               5,
		TxnReserveStock:           5,
		TxnPurchaseStock:          3,
		TxnCancelStockReservation: 1,
		TxnCreateStockTransaction: 3,
		TxnGetStockTransaction:    2,
		TxnUpdateStockTransaction: 2,
		TxnCreateCheckout:         4,
		TxnCreateCheckoutPayment:  3,
		TxnAddLineToCheckout:      4,
		TxnGetCheckout:            4,
		TxnDeleteLineFromCheckout: 2,
		TxnDeleteCheckout:         2,
	}
}

// Executor is the submission boundary the driver replays against. The
// in-process implementation (EngineExecutor) is a direct engine call; the
// remote implementation (RemoteExecutor) serializes the same submissions
// over the network front end — so one driver binary is both the reference
// oracle and a separate-process load generator.
type Executor interface {
	// Resolve maps a transaction name to the dense handle ExecuteID takes.
	Resolve(name string) (store.TxnID, bool)
	// ExecuteID submits one transaction and blocks until it completes.
	// Refusals must surface as errors matching store.ErrOverload /
	// store.ErrDeadlineExceeded so the driver's refusal accounting works
	// for every transport.
	ExecuteID(id store.TxnID, key string, args any) (any, error)
	// InFlightLimit is the default concurrent-submission cap when the
	// driver's MaxInFlight is zero.
	InFlightLimit() int
}

// EngineExecutor is the in-process Executor: submissions are direct engine
// calls, byte-identical to the pre-wire driver.
type EngineExecutor struct {
	// Eng is the target engine.
	Eng *store.Engine
}

// Resolve maps the name through the engine's handle table.
func (e EngineExecutor) Resolve(name string) (store.TxnID, bool) { return e.Eng.Handle(name) }

// ExecuteID submits through the engine's allocation-free hot path.
func (e EngineExecutor) ExecuteID(id store.TxnID, key string, args any) (any, error) {
	return e.Eng.ExecuteID(id, key, args)
}

// InFlightLimit mirrors one partition queue's capacity, the pre-wire
// driver default.
func (e EngineExecutor) InFlightLimit() int { return e.Eng.Config().QueueCapacity }

// Driver replays a load trace against an Executor, converting each slot's
// request count into Poisson transaction arrivals (Section 7: the paper
// replays B2W's production logs; here the trace is synthetic but the
// request mix and keys mimic the production flow).
type Driver struct {
	// Eng is the target engine for in-process replay. Ignored when Exec is
	// set.
	Eng *store.Engine
	// Exec overrides the submission boundary, e.g. with a RemoteExecutor
	// hammering a network front end from a separate process. Nil wraps Eng
	// in an EngineExecutor.
	Exec Executor
	// Spec sizes the key pools (must match what Load created).
	Spec LoadSpec
	// Mix weights the transaction types; nil uses DefaultMix.
	Mix Mix
	// Seed makes the replay reproducible.
	Seed int64
	// MaxInFlight caps concurrent submissions so overload cannot grow
	// goroutines without bound; arrivals beyond the cap are shed and
	// counted. Zero uses the executor's InFlightLimit (for the engine, one
	// partition queue's capacity).
	MaxInFlight int
	// Recorder, when set, receives client-side sheds (CountClientShed), so
	// the serve summary can report one total of work refused across the
	// driver's in-flight cap and the engine's server-side defenses.
	Recorder *metrics.Recorder

	inFlight sync.WaitGroup
	executed atomic.Int64
	failed   atomic.Int64
	refused  atomic.Int64
	shed     atomic.Int64
}

// Stats reports what the driver executed.
type Stats struct {
	// Executed is the number of completed transactions.
	Executed int64
	// Failed is the number of transactions that returned an error
	// (including expected business errors like insufficient stock).
	// Refusals by the engine's overload plane are counted in Refused, not
	// here.
	Failed int64
	// Refused is the number of submissions the engine's overload plane
	// turned away (store.ErrOverload / store.ErrDeadlineExceeded): work the
	// server declined under backpressure, distinct from work that failed.
	Refused int64
	// Shed is the number of Poisson arrivals dropped because MaxInFlight
	// submissions were already outstanding — the driver's client-side
	// admission control under overload.
	Shed int64
}

// Run replays the trace: slot i of series lasts slotDur of wall time and
// produces series[i]*rateScale Poisson arrivals. It blocks until the trace
// and all in-flight transactions finish, or ctx is cancelled.
func (d *Driver) Run(ctx context.Context, series workload.Series, slotDur time.Duration, rateScale float64) (Stats, error) {
	exec := d.Exec
	if exec == nil {
		if d.Eng == nil {
			return Stats{}, errors.New("b2w: driver has no engine or executor")
		}
		exec = EngineExecutor{Eng: d.Eng}
	}
	arrivals, err := workload.NewArrivals(series, slotDur, rateScale, d.Seed)
	if err != nil {
		return Stats{}, err
	}
	mix := d.Mix
	if mix == nil {
		mix = DefaultMix()
	}
	chooser, err := newChooser(mix)
	if err != nil {
		return Stats{}, err
	}
	// Resolve every mixed transaction name to its dense handle once; the
	// per-arrival hot path then never touches the executor's name map.
	ids := make([]store.TxnID, len(chooser.names))
	for i, name := range chooser.names {
		id, ok := exec.Resolve(name)
		if !ok {
			return Stats{}, fmt.Errorf("b2w: transaction %s not registered", name)
		}
		ids[i] = id
	}
	rng := rand.New(rand.NewSource(d.Seed + 1))

	cap := d.MaxInFlight
	if cap <= 0 {
		cap = exec.InFlightLimit()
	}
	if cap <= 0 {
		cap = 1
	}
	sem := make(chan struct{}, cap)

	start := time.Now()
	for {
		at, ok := arrivals.Next()
		if !ok {
			break
		}
		if err := sleepUntil(ctx, start.Add(at)); err != nil {
			break // context cancelled: stop issuing, wait for in-flight
		}
		pick := chooser.pick(rng)
		key, args := d.keyAndArgs(rng, chooser.names[pick])
		select {
		case sem <- struct{}{}:
		default:
			d.shed.Add(1)
			if d.Recorder != nil {
				d.Recorder.CountClientShed()
			}
			continue
		}
		d.inFlight.Add(1)
		go func(id store.TxnID, key string, args any) {
			defer func() {
				<-sem
				d.inFlight.Done()
			}()
			_, err := exec.ExecuteID(id, key, args)
			switch {
			case err == nil:
				d.executed.Add(1)
			case errors.Is(err, store.ErrOverload) || errors.Is(err, store.ErrDeadlineExceeded):
				d.refused.Add(1)
			default:
				d.failed.Add(1)
			}
		}(ids[pick], key, args)
	}
	d.inFlight.Wait()
	return Stats{Executed: d.executed.Load(), Failed: d.failed.Load(),
		Refused: d.refused.Load(), Shed: d.shed.Load()}, ctx.Err()
}

func sleepUntil(ctx context.Context, t time.Time) error {
	d := time.Until(t)
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// keyAndArgs draws the routing key and arguments for one transaction.
func (d *Driver) keyAndArgs(rng *rand.Rand, name string) (string, any) {
	carts := max(d.Spec.Carts, 1)
	checkouts := max(d.Spec.Checkouts, 1)
	stocks := max(d.Spec.Stocks, 1)
	cart := CartKey(rng.Intn(carts))
	checkout := CheckoutKey(rng.Intn(checkouts))
	sku := StockKey(rng.Intn(stocks))
	line := LineArgs{
		SKU:       sku,
		Quantity:  1 + rng.Intn(3),
		UnitPrice: int64(500 + rng.Intn(100000)),
		Customer:  fmt.Sprintf("customer-%06d", rng.Intn(1_000_000)),
	}
	switch name {
	case TxnAddLineToCart, TxnDeleteLineFromCart:
		return cart, line
	case TxnGetCart, TxnDeleteCart, TxnReserveCart:
		return cart, nil
	case TxnGetStock, TxnGetStockQuantity:
		return sku, nil
	case TxnReserveStock, TxnPurchaseStock, TxnCancelStockReservation:
		return sku, QuantityArgs{Quantity: 1 + rng.Intn(2)}
	case TxnCreateStockTransaction:
		return StockTxKey(rng.Intn(stocks * 4)), StockTxArgs{CartID: cart, SKU: sku, Quantity: 1}
	case TxnGetStockTransaction:
		return StockTxKey(rng.Intn(stocks * 4)), nil
	case TxnUpdateStockTransaction:
		status := StockTxPurchased
		if rng.Intn(3) == 0 {
			status = StockTxCancelled
		}
		return StockTxKey(rng.Intn(stocks * 4)), StatusArgs{Status: status}
	case TxnCreateCheckout:
		return checkout, CheckoutArgs{CartID: cart, Lines: []CartLine{{SKU: sku, Quantity: 1, UnitPrice: line.UnitPrice}}}
	case TxnCreateCheckoutPayment:
		return checkout, Payment{Method: "credit", Amount: line.UnitPrice}
	case TxnAddLineToCheckout, TxnDeleteLineFromCheckout:
		return checkout, line
	case TxnGetCheckout, TxnDeleteCheckout:
		return checkout, nil
	default:
		return cart, nil
	}
}

// chooser draws transaction names proportionally to their weights.
type chooser struct {
	names []string
	cumul []float64
	total float64
}

func newChooser(mix Mix) (*chooser, error) {
	c := &chooser{}
	// Deterministic order: iterate the canonical name list.
	for _, name := range AllTxns {
		w, ok := mix[name]
		if !ok {
			continue
		}
		if w < 0 {
			return nil, fmt.Errorf("b2w: negative weight for %s", name)
		}
		if w == 0 {
			continue
		}
		c.total += w
		c.names = append(c.names, name)
		c.cumul = append(c.cumul, c.total)
	}
	if c.total <= 0 {
		return nil, errors.New("b2w: mix has no positive weights")
	}
	return c, nil
}

// pick draws one transaction and returns its index into names.
func (c *chooser) pick(rng *rand.Rand) int {
	x := rng.Float64() * c.total
	for i, cm := range c.cumul {
		if x < cm {
			return i
		}
	}
	return len(c.names) - 1
}
