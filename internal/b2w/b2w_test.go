package b2w

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"pstore/internal/store"
	"pstore/internal/workload"
)

func testEngine(t *testing.T) *store.Engine {
	t.Helper()
	cfg := store.Config{
		MaxMachines:          2,
		PartitionsPerMachine: 2,
		Buckets:              64,
		ServiceTime:          0,
		QueueCapacity:        4096,
		InitialMachines:      2,
	}
	e, err := store.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(e); err != nil {
		t.Fatal(err)
	}
	e.Start()
	t.Cleanup(e.Stop)
	return e
}

func TestCartLifecycle(t *testing.T) {
	e := testEngine(t)
	const cart = "cart-0001"

	// Add two distinct items, then more of the first.
	if _, err := e.Execute(TxnAddLineToCart, cart, LineArgs{SKU: "sku-1", Quantity: 2, UnitPrice: 1000}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(TxnAddLineToCart, cart, LineArgs{SKU: "sku-2", Quantity: 1, UnitPrice: 500}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(TxnAddLineToCart, cart, LineArgs{SKU: "sku-1", Quantity: 1, UnitPrice: 1000}); err != nil {
		t.Fatal(err)
	}
	v, err := e.Execute(TxnGetCart, cart, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := v.(*Cart)
	if len(c.Lines) != 2 {
		t.Fatalf("cart has %d lines, want 2", len(c.Lines))
	}
	if c.Lines[0].Quantity != 3 {
		t.Errorf("sku-1 quantity = %d, want 3", c.Lines[0].Quantity)
	}
	if c.Total != 3*1000+500 {
		t.Errorf("cart total = %d, want 3500", c.Total)
	}

	// Reserve the cart, then delete a line, then the whole cart.
	if _, err := e.Execute(TxnReserveCart, cart, nil); err != nil {
		t.Fatal(err)
	}
	v, _ = e.Execute(TxnGetCart, cart, nil)
	for _, l := range v.(*Cart).Lines {
		if !l.Reserved {
			t.Errorf("line %s not reserved", l.SKU)
		}
	}
	if _, err := e.Execute(TxnDeleteLineFromCart, cart, LineArgs{SKU: "sku-2"}); err != nil {
		t.Fatal(err)
	}
	v, _ = e.Execute(TxnGetCart, cart, nil)
	if got := v.(*Cart); len(got.Lines) != 1 || got.Total != 3000 {
		t.Errorf("after line delete: %d lines, total %d", len(got.Lines), got.Total)
	}
	if _, err := e.Execute(TxnDeleteCart, cart, nil); err != nil {
		t.Fatal(err)
	}
	v, err = e.Execute(TxnGetCart, cart, nil)
	if err != nil || v != nil {
		t.Errorf("cart still present after delete: %v, %v", v, err)
	}
}

func TestGetCartReturnsCopy(t *testing.T) {
	e := testEngine(t)
	const cart = "cart-0002"
	if _, err := e.Execute(TxnAddLineToCart, cart, LineArgs{SKU: "s", Quantity: 1, UnitPrice: 10}); err != nil {
		t.Fatal(err)
	}
	v, _ := e.Execute(TxnGetCart, cart, nil)
	v.(*Cart).Lines[0].Quantity = 999
	v2, _ := e.Execute(TxnGetCart, cart, nil)
	if v2.(*Cart).Lines[0].Quantity != 1 {
		t.Error("GetCart leaked internal state")
	}
}

func TestStockFlow(t *testing.T) {
	e := testEngine(t)
	const sku = "sku-0001"
	if _, err := e.Execute(txnLoadStock, sku, StockItem{Available: 10}); err != nil {
		t.Fatal(err)
	}
	q, err := e.Execute(TxnGetStockQuantity, sku, nil)
	if err != nil || q != 10 {
		t.Fatalf("quantity = %v, %v; want 10", q, err)
	}
	if _, err := e.Execute(TxnReserveStock, sku, QuantityArgs{Quantity: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(TxnReserveStock, sku, QuantityArgs{Quantity: 7}); !errors.Is(err, ErrInsufficientStock) {
		t.Fatalf("over-reserve err = %v, want ErrInsufficientStock", err)
	}
	if _, err := e.Execute(TxnPurchaseStock, sku, QuantityArgs{Quantity: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(TxnCancelStockReservation, sku, QuantityArgs{Quantity: 1}); err != nil {
		t.Fatal(err)
	}
	v, err := e.Execute(TxnGetStock, sku, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := v.(*StockItem)
	if s.Available != 7 || s.Reserved != 0 || s.Purchased != 3 {
		t.Errorf("stock = %+v, want avail 7, reserved 0, purchased 3", s)
	}
	// Conservation: units never created or destroyed.
	if s.Available+s.Reserved+s.Purchased != 10 {
		t.Errorf("stock units not conserved: %+v", s)
	}
}

func TestStockMissing(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Execute(TxnReserveStock, "sku-none", QuantityArgs{Quantity: 1}); !errors.Is(err, ErrNotFound) {
		t.Errorf("reserve missing sku err = %v", err)
	}
	q, err := e.Execute(TxnGetStockQuantity, "sku-none", nil)
	if err != nil || q != 0 {
		t.Errorf("quantity of missing sku = %v, %v", q, err)
	}
}

func TestStockTransactionLifecycle(t *testing.T) {
	e := testEngine(t)
	const id = "stocktx-1"
	if _, err := e.Execute(TxnCreateStockTransaction, id, StockTxArgs{CartID: "cart-1", SKU: "sku-1", Quantity: 2}); err != nil {
		t.Fatal(err)
	}
	v, err := e.Execute(TxnGetStockTransaction, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := v.(*StockTransaction)
	if st.Status != StockTxReserved || st.Quantity != 2 {
		t.Errorf("stock tx = %+v", st)
	}
	if _, err := e.Execute(TxnUpdateStockTransaction, id, StatusArgs{Status: StockTxPurchased}); err != nil {
		t.Fatal(err)
	}
	v, _ = e.Execute(TxnGetStockTransaction, id, nil)
	if v.(*StockTransaction).Status != StockTxPurchased {
		t.Error("status not updated")
	}
	if _, err := e.Execute(TxnUpdateStockTransaction, id, StatusArgs{Status: "BOGUS"}); err == nil {
		t.Error("bogus status accepted")
	}
	if _, err := e.Execute(TxnUpdateStockTransaction, "stocktx-none", StatusArgs{Status: StockTxCancelled}); !errors.Is(err, ErrNotFound) {
		t.Errorf("update missing tx err = %v", err)
	}
}

func TestCheckoutLifecycle(t *testing.T) {
	e := testEngine(t)
	const co = "checkout-1"
	lines := []CartLine{{SKU: "sku-1", Quantity: 2, UnitPrice: 100}}
	if _, err := e.Execute(TxnCreateCheckout, co, CheckoutArgs{CartID: "cart-1", Lines: lines}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(TxnCreateCheckoutPayment, co, Payment{Method: "credit", Amount: 200}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(TxnAddLineToCheckout, co, LineArgs{SKU: "sku-2", Quantity: 1, UnitPrice: 50}); err != nil {
		t.Fatal(err)
	}
	v, err := e.Execute(TxnGetCheckout, co, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := v.(*Checkout)
	if len(c.Lines) != 2 || len(c.Payments) != 1 || c.Total != 250 || c.CartID != "cart-1" {
		t.Errorf("checkout = %+v", c)
	}
	if _, err := e.Execute(TxnDeleteLineFromCheckout, co, LineArgs{SKU: "sku-1"}); err != nil {
		t.Fatal(err)
	}
	v, _ = e.Execute(TxnGetCheckout, co, nil)
	if got := v.(*Checkout); len(got.Lines) != 1 || got.Total != 50 {
		t.Errorf("after line delete: %+v", got)
	}
	if _, err := e.Execute(TxnDeleteCheckout, co, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Execute(TxnGetCheckout, co, nil); v != nil {
		t.Error("checkout still present after delete")
	}
	if _, err := e.Execute(TxnCreateCheckoutPayment, "checkout-none", Payment{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("payment on missing checkout err = %v", err)
	}
}

func TestBadArgsRejected(t *testing.T) {
	e := testEngine(t)
	cases := []struct{ txn, key string }{
		{TxnAddLineToCart, "cart-x"},
		{TxnDeleteLineFromCart, "cart-x"},
		{TxnReserveStock, "sku-x"},
		{TxnPurchaseStock, "sku-x"},
		{TxnCancelStockReservation, "sku-x"},
		{TxnCreateStockTransaction, "stocktx-x"},
		{TxnUpdateStockTransaction, "stocktx-x"},
		{TxnCreateCheckout, "checkout-x"},
		{TxnCreateCheckoutPayment, "checkout-x"},
		{TxnAddLineToCheckout, "checkout-x"},
		{TxnDeleteLineFromCheckout, "checkout-x"},
		{txnLoadStock, "sku-x"},
	}
	for _, c := range cases {
		if _, err := e.Execute(c.txn, c.key, struct{ X int }{}); err == nil {
			t.Errorf("%s accepted bogus args", c.txn)
		}
	}
}

func TestLoadPopulates(t *testing.T) {
	e := testEngine(t)
	spec := LoadSpec{Carts: 50, Checkouts: 20, Stocks: 30, LinesPerCart: 2, Seed: 1, Loaders: 4}
	if err := Load(e, spec); err != nil {
		t.Fatal(err)
	}
	rows := e.TotalRows()
	want := spec.Carts + spec.Checkouts + spec.Stocks
	if rows != want {
		t.Fatalf("TotalRows = %d, want %d", rows, want)
	}
	// Spot-check entities exist.
	if v, err := e.Execute(TxnGetCart, CartKey(0), nil); err != nil || v == nil {
		t.Errorf("cart 0 missing: %v, %v", v, err)
	}
	if v, err := e.Execute(TxnGetStock, StockKey(0), nil); err != nil || v == nil {
		t.Errorf("stock 0 missing: %v, %v", v, err)
	}
	if v, err := e.Execute(TxnGetCheckout, CheckoutKey(0), nil); err != nil || v == nil {
		t.Errorf("checkout 0 missing: %v, %v", v, err)
	}
}

func TestDriverRunsTrace(t *testing.T) {
	e := testEngine(t)
	spec := LoadSpec{Carts: 40, Checkouts: 15, Stocks: 25, LinesPerCart: 2, Seed: 2, Loaders: 4}
	if err := Load(e, spec); err != nil {
		t.Fatal(err)
	}
	// 20 slots of 50 requests each, 10ms per slot -> ~1000 transactions in
	// about 200 ms of wall time.
	vals := make([]float64, 20)
	for i := range vals {
		vals[i] = 50
	}
	series := workload.NewSeries(time.Now(), time.Minute, vals)
	d := &Driver{Eng: e, Spec: spec, Seed: 3}
	stats, err := d.Run(context.Background(), series, 10*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := stats.Executed + stats.Failed
	if total < 800 || total > 1200 {
		t.Fatalf("driver executed %d transactions, want ~1000", total)
	}
	// Business errors (insufficient stock, missing stock-tx) are expected
	// but should be a small minority.
	if stats.Failed > total/4 {
		t.Errorf("%d/%d transactions failed", stats.Failed, total)
	}
}

// TestDriverShedsUnderOverload caps in-flight submissions at one while
// arrivals far outpace the (slowed) engine: the driver must shed the excess
// and report it rather than spawning unbounded goroutines.
func TestDriverShedsUnderOverload(t *testing.T) {
	cfg := store.Config{
		MaxMachines:          2,
		PartitionsPerMachine: 2,
		Buckets:              64,
		ServiceTime:          2 * time.Millisecond,
		QueueCapacity:        4096,
		InitialMachines:      2,
	}
	e, err := store.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(e); err != nil {
		t.Fatal(err)
	}
	e.Start()
	t.Cleanup(e.Stop)
	spec := LoadSpec{Carts: 40, Checkouts: 15, Stocks: 25, LinesPerCart: 2, Seed: 5, Loaders: 4}
	if err := Load(e, spec); err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = 100
	}
	series := workload.NewSeries(time.Now(), time.Minute, vals)
	d := &Driver{Eng: e, Spec: spec, Seed: 6, MaxInFlight: 1}
	stats, err := d.Run(context.Background(), series, 10*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shed == 0 {
		t.Error("overloaded driver shed no arrivals")
	}
	if stats.Executed+stats.Failed == 0 {
		t.Error("driver executed nothing")
	}
}

func TestDriverContextCancel(t *testing.T) {
	e := testEngine(t)
	spec := DefaultLoadSpec()
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 100
	}
	series := workload.NewSeries(time.Now(), time.Minute, vals)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	d := &Driver{Eng: e, Spec: spec, Seed: 4}
	start := time.Now()
	_, err := d.Run(ctx, series, 20*time.Millisecond, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("driver did not stop promptly on cancellation")
	}
}

func TestChooserDistribution(t *testing.T) {
	if _, err := newChooser(Mix{}); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := newChooser(Mix{TxnGetCart: -1}); err == nil {
		t.Error("negative weight accepted")
	}
	c, err := newChooser(Mix{TxnGetCart: 3, TxnAddLineToCart: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := newTestRand()
	counts := map[string]int{}
	for i := 0; i < 40000; i++ {
		counts[c.names[c.pick(rng)]]++
	}
	ratio := float64(counts[TxnGetCart]) / float64(counts[TxnAddLineToCart])
	if ratio < 2.6 || ratio > 3.4 {
		t.Errorf("weight ratio = %.2f, want ~3", ratio)
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(11)) }
