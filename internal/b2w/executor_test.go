package b2w

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"pstore/internal/store"
	"pstore/internal/workload"
)

// recordingExecutor captures every submission the driver makes, so two runs
// at the same seed can be compared. Resolve hands out stable ids from the
// canonical transaction list.
type recordingExecutor struct {
	mu    sync.Mutex
	calls []string
}

func (r *recordingExecutor) Resolve(name string) (store.TxnID, bool) {
	for i, n := range AllTxns {
		if n == name {
			return store.TxnID(i), true
		}
	}
	return 0, false
}

func (r *recordingExecutor) ExecuteID(id store.TxnID, key string, args any) (any, error) {
	r.mu.Lock()
	r.calls = append(r.calls, fmt.Sprintf("%d|%s|%+v", id, key, args))
	r.mu.Unlock()
	return nil, nil
}

func (r *recordingExecutor) InFlightLimit() int { return 64 }

// sorted returns the submissions in a canonical order: execution goroutines
// race each other, so only the set of submissions is deterministic, not the
// completion order.
func (r *recordingExecutor) sorted() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.calls...)
	sort.Strings(out)
	return out
}

// TestDriverDeterministicAcrossExecutors pins the refactor's core promise:
// at a fixed seed the driver issues exactly the same transactions — same
// types, keys, and arguments — no matter which Executor sits behind it, so
// the in-process run stays the reference oracle for a remote one.
func TestDriverDeterministicAcrossExecutors(t *testing.T) {
	spec := LoadSpec{Carts: 40, Checkouts: 15, Stocks: 25, LinesPerCart: 2, Seed: 2}
	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = 40
	}
	run := func() []string {
		exec := &recordingExecutor{}
		series := workload.NewSeries(time.Now(), time.Minute, vals)
		d := &Driver{Exec: exec, Spec: spec, Seed: 7}
		stats, err := d.Run(context.Background(), series, 5*time.Millisecond, 1)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Executed == 0 || stats.Shed != 0 {
			t.Fatalf("stats = %+v, want executions and no sheds", stats)
		}
		return exec.sorted()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no submissions recorded")
	}
	if len(a) != len(b) {
		t.Fatalf("runs issued %d vs %d submissions", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("submission %d differs:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

// TestDriverRefusalAccounting checks typed refusals from any executor are
// counted as refused work, not failures.
func TestDriverRefusalAccounting(t *testing.T) {
	exec := &flakyExecutor{}
	vals := []float64{30, 30, 30}
	series := workload.NewSeries(time.Now(), time.Minute, vals)
	d := &Driver{Exec: exec, Spec: LoadSpec{Carts: 10, Checkouts: 5, Stocks: 5}, Seed: 1}
	stats, err := d.Run(context.Background(), series, 5*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Refused == 0 || stats.Failed == 0 || stats.Executed == 0 {
		t.Fatalf("stats = %+v, want all three outcome classes", stats)
	}
	if stats.Refused != exec.refusals.n || stats.Failed != exec.failures.n {
		t.Fatalf("stats = %+v, executor refused %d failed %d", stats, exec.refusals.n, exec.failures.n)
	}
}

type counter struct {
	mu sync.Mutex
	n  int64
}

func (c *counter) inc() { c.mu.Lock(); c.n++; c.mu.Unlock() }

// flakyExecutor cycles success, overload refusal, and business failure.
type flakyExecutor struct {
	mu       sync.Mutex
	calls    int
	refusals counter
	failures counter
}

func (f *flakyExecutor) Resolve(name string) (store.TxnID, bool) { return 1, true }

func (f *flakyExecutor) ExecuteID(id store.TxnID, key string, args any) (any, error) {
	f.mu.Lock()
	n := f.calls
	f.calls++
	f.mu.Unlock()
	switch n % 3 {
	case 0:
		return nil, nil
	case 1:
		f.refusals.inc()
		return nil, fmt.Errorf("wire says no: %w", store.ErrOverload)
	default:
		f.failures.inc()
		return nil, errors.New("insufficient stock")
	}
}

func (f *flakyExecutor) InFlightLimit() int { return 64 }

func TestDriverNeedsEngineOrExecutor(t *testing.T) {
	d := &Driver{}
	series := workload.NewSeries(time.Now(), time.Minute, []float64{1})
	if _, err := d.Run(context.Background(), series, time.Millisecond, 1); err == nil {
		t.Fatal("expected an error with no engine and no executor")
	}
}
