package b2w

import (
	"context"
	"fmt"

	"pstore/internal/client"
	"pstore/internal/store"
)

// RemoteExecutor submits the driver's transactions through the network
// front end instead of a local engine: the same driver binary becomes a
// separate-process load generator hammering a real socket. The server's
// backpressure arrives as typed errors (the client maps 429/504/503 back to
// store.ErrOverload / ErrDeadlineExceeded / ErrPartitionDown), so the
// driver's refused-work accounting is transport-agnostic.
type RemoteExecutor struct {
	c     *client.Client
	names []string
	ids   map[string]store.TxnID
}

// NewRemoteExecutor builds an executor over a connected client. It fetches
// the server's transaction catalog once, so Resolve answers locally with
// the server's own dense handles and an unregistered name fails before the
// trace starts.
func NewRemoteExecutor(ctx context.Context, c *client.Client) (*RemoteExecutor, error) {
	names, err := c.Txns(ctx)
	if err != nil {
		return nil, fmt.Errorf("b2w: fetching remote transaction catalog: %w", err)
	}
	ids := make(map[string]store.TxnID, len(names))
	for i, name := range names {
		ids[name] = store.TxnID(i)
	}
	return &RemoteExecutor{c: c, names: names, ids: ids}, nil
}

// Resolve answers from the server's catalog.
func (r *RemoteExecutor) Resolve(name string) (store.TxnID, bool) {
	id, ok := r.ids[name]
	return id, ok
}

// ExecuteID submits one transaction over the wire. The result is the raw
// JSON value (the driver only inspects errors).
func (r *RemoteExecutor) ExecuteID(id store.TxnID, key string, args any) (any, error) {
	if id < 0 || int(id) >= len(r.names) {
		return nil, store.ErrUnknownTxn
	}
	raw, err := r.c.Execute(context.Background(), r.names[id], key, args)
	if err != nil {
		return nil, err
	}
	return raw, nil
}

// InFlightLimit defers to the driver's own cap: the client's in-flight cap
// already bounds concurrency, and its sheds are counted as refusals, so the
// driver semaphore just needs to be at least as large. 4096 goroutines of
// headroom keeps the client cap the binding constraint.
func (r *RemoteExecutor) InFlightLimit() int { return 4096 }
