package b2w

import (
	"errors"
	"fmt"

	"pstore/internal/store"
)

// Transaction names (Table 4 of the paper).
const (
	TxnAddLineToCart          = "AddLineToCart"
	TxnDeleteLineFromCart     = "DeleteLineFromCart"
	TxnGetCart                = "GetCart"
	TxnDeleteCart             = "DeleteCart"
	TxnReserveCart            = "ReserveCart"
	TxnGetStock               = "GetStock"
	TxnGetStockQuantity       = "GetStockQuantity"
	TxnReserveStock           = "ReserveStock"
	TxnPurchaseStock          = "PurchaseStock"
	TxnCancelStockReservation = "CancelStockReservation"
	TxnCreateStockTransaction = "CreateStockTransaction"
	TxnGetStockTransaction    = "GetStockTransaction"
	TxnUpdateStockTransaction = "UpdateStockTransaction"
	TxnCreateCheckout         = "CreateCheckout"
	TxnCreateCheckoutPayment  = "CreateCheckoutPayment"
	TxnAddLineToCheckout      = "AddLineToCheckout"
	TxnDeleteLineFromCheckout = "DeleteLineFromCheckout"
	TxnGetCheckout            = "GetCheckout"
	TxnDeleteCheckout         = "DeleteCheckout"
)

// AllTxns lists every benchmark transaction name.
var AllTxns = []string{
	TxnAddLineToCart, TxnDeleteLineFromCart, TxnGetCart, TxnDeleteCart,
	TxnReserveCart, TxnGetStock, TxnGetStockQuantity, TxnReserveStock,
	TxnPurchaseStock, TxnCancelStockReservation, TxnCreateStockTransaction,
	TxnGetStockTransaction, TxnUpdateStockTransaction, TxnCreateCheckout,
	TxnCreateCheckoutPayment, TxnAddLineToCheckout, TxnDeleteLineFromCheckout,
	TxnGetCheckout, TxnDeleteCheckout,
}

// ErrInsufficientStock is returned by ReserveStock when availability is too
// low; the benchmark driver removes the item from the cart, like the B2W
// checkout flow.
var ErrInsufficientStock = errors.New("b2w: insufficient stock")

// ErrNotFound is returned when a referenced entity does not exist.
var ErrNotFound = errors.New("b2w: not found")

// LineArgs are the arguments of cart/checkout line operations.
type LineArgs struct {
	SKU       string
	Quantity  int
	UnitPrice int64
	Customer  string
}

// QuantityArgs carry a quantity for stock operations.
type QuantityArgs struct {
	Quantity int
}

// StockTxArgs describe a new stock transaction.
type StockTxArgs struct {
	CartID   string
	SKU      string
	Quantity int
}

// StatusArgs carry a stock-transaction status update.
type StatusArgs struct {
	Status string
}

// CheckoutArgs describe a new checkout.
type CheckoutArgs struct {
	CartID string
	Lines  []CartLine
}

// Register installs all nineteen stored procedures into the engine. Call it
// before Engine.Start.
func Register(eng *store.Engine) error {
	procs := map[string]store.TxnFunc{
		TxnAddLineToCart:          addLineToCart,
		TxnDeleteLineFromCart:     deleteLineFromCart,
		TxnGetCart:                getCart,
		TxnDeleteCart:             deleteCart,
		TxnReserveCart:            reserveCart,
		TxnGetStock:               getStock,
		TxnGetStockQuantity:       getStockQuantity,
		TxnReserveStock:           reserveStock,
		TxnPurchaseStock:          purchaseStock,
		TxnCancelStockReservation: cancelStockReservation,
		TxnCreateStockTransaction: createStockTransaction,
		TxnGetStockTransaction:    getStockTransaction,
		TxnUpdateStockTransaction: updateStockTransaction,
		TxnCreateCheckout:         createCheckout,
		TxnCreateCheckoutPayment:  createCheckoutPayment,
		TxnAddLineToCheckout:      addLineToCheckout,
		TxnDeleteLineFromCheckout: deleteLineFromCheckout,
		TxnGetCheckout:            getCheckout,
		TxnDeleteCheckout:         deleteCheckout,
		txnLoadStock:              loadStockRow,
		txnLoadCart:               loadCartRow,
		txnLoadCheckout:           loadCheckoutRow,
	}
	for name, fn := range procs {
		if err := eng.Register(name, fn); err != nil {
			return fmt.Errorf("b2w: registering %s: %w", name, err)
		}
	}
	// Bulk loading bypasses the simulated per-transaction service time so
	// experiments spend their wall-clock budget on the measured workload.
	for _, name := range []string{txnLoadStock, txnLoadCart, txnLoadCheckout} {
		if err := eng.SetServiceTime(name, 0); err != nil {
			return fmt.Errorf("b2w: configuring %s: %w", name, err)
		}
	}
	return nil
}

// loadCartRow installs a complete cart during bulk loading.
func loadCartRow(tx *store.Tx) (any, error) {
	// Loader jobs pass the row by value; a replayed load command from the
	// durable log decodes it as a pointer (see gob.go). Either way a private
	// copy is installed.
	var c Cart
	switch v := tx.Args.(type) {
	case Cart:
		c = v
	case *Cart:
		c = *v
	default:
		return nil, fmt.Errorf("b2w: loadCart wants Cart, got %T", tx.Args)
	}
	c.ID = tx.Key
	return nil, tx.Put(TableCart, tx.Key, &c)
}

// loadCheckoutRow installs a complete checkout during bulk loading.
func loadCheckoutRow(tx *store.Tx) (any, error) {
	var c Checkout
	switch v := tx.Args.(type) {
	case Checkout:
		c = v
	case *Checkout:
		c = *v
	default:
		return nil, fmt.Errorf("b2w: loadCheckout wants Checkout, got %T", tx.Args)
	}
	c.ID = tx.Key
	return nil, tx.Put(TableCheckout, tx.Key, &c)
}

func loadCart(tx *store.Tx) (*Cart, error) {
	v, ok, err := tx.Get(TableCart, tx.Key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	c, ok := v.(*Cart)
	if !ok {
		return nil, fmt.Errorf("b2w: row %q is not a cart", tx.Key)
	}
	return c, nil
}

// addLineToCart adds an item to the shopping cart, creating the cart if it
// does not exist yet.
func addLineToCart(tx *store.Tx) (any, error) {
	args, ok := tx.Args.(LineArgs)
	if !ok {
		return nil, fmt.Errorf("b2w: AddLineToCart wants LineArgs, got %T", tx.Args)
	}
	c, err := loadCart(tx)
	if err != nil {
		return nil, err
	}
	if c == nil {
		c = &Cart{ID: tx.Key, Customer: args.Customer}
	} else {
		c = c.clone()
	}
	for i := range c.Lines {
		if c.Lines[i].SKU == args.SKU {
			c.Lines[i].Quantity += args.Quantity
			c.Total += int64(args.Quantity) * args.UnitPrice
			return len(c.Lines), tx.Put(TableCart, tx.Key, c)
		}
	}
	c.Lines = append(c.Lines, CartLine{SKU: args.SKU, Quantity: args.Quantity, UnitPrice: args.UnitPrice})
	c.Total += int64(args.Quantity) * args.UnitPrice
	return len(c.Lines), tx.Put(TableCart, tx.Key, c)
}

// deleteLineFromCart removes an item from the cart if present.
func deleteLineFromCart(tx *store.Tx) (any, error) {
	args, ok := tx.Args.(LineArgs)
	if !ok {
		return nil, fmt.Errorf("b2w: DeleteLineFromCart wants LineArgs, got %T", tx.Args)
	}
	c, err := loadCart(tx)
	if err != nil || c == nil {
		return nil, err
	}
	c = c.clone()
	for i := range c.Lines {
		if c.Lines[i].SKU == args.SKU {
			c.Total -= int64(c.Lines[i].Quantity) * c.Lines[i].UnitPrice
			c.Lines = append(c.Lines[:i], c.Lines[i+1:]...)
			break
		}
	}
	return len(c.Lines), tx.Put(TableCart, tx.Key, c)
}

// getCart retrieves the items currently in the cart. It returns a copy so
// callers cannot mutate partition state.
func getCart(tx *store.Tx) (any, error) {
	c, err := loadCart(tx)
	if err != nil {
		return nil, err
	}
	if c == nil {
		return nil, nil
	}
	out := *c
	out.Lines = append([]CartLine(nil), c.Lines...)
	return &out, nil
}

// deleteCart removes the shopping cart.
func deleteCart(tx *store.Tx) (any, error) {
	return nil, tx.Delete(TableCart, tx.Key)
}

// reserveCart marks every line of the cart as reserved (called once the
// checkout flow has reserved the underlying stock).
func reserveCart(tx *store.Tx) (any, error) {
	c, err := loadCart(tx)
	if err != nil {
		return nil, err
	}
	if c == nil {
		return nil, ErrNotFound
	}
	c = c.clone()
	for i := range c.Lines {
		c.Lines[i].Reserved = true
	}
	return len(c.Lines), tx.Put(TableCart, tx.Key, c)
}

// loadStockRow is the loader's bootstrap procedure: it installs a complete
// inventory record for a SKU.
func loadStockRow(tx *store.Tx) (any, error) {
	var item StockItem
	switch v := tx.Args.(type) {
	case StockItem:
		item = v
	case *StockItem:
		item = *v
	default:
		return nil, fmt.Errorf("b2w: loadStock wants StockItem, got %T", tx.Args)
	}
	item.SKU = tx.Key
	return nil, tx.Put(TableStock, tx.Key, &item)
}

func loadStock(tx *store.Tx) (*StockItem, error) {
	v, ok, err := tx.Get(TableStock, tx.Key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	s, ok := v.(*StockItem)
	if !ok {
		return nil, fmt.Errorf("b2w: row %q is not a stock item", tx.Key)
	}
	return s, nil
}

// getStock retrieves the full inventory record for a SKU.
func getStock(tx *store.Tx) (any, error) {
	s, err := loadStock(tx)
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil
	}
	out := *s
	return &out, nil
}

// getStockQuantity determines the availability of an item.
func getStockQuantity(tx *store.Tx) (any, error) {
	s, err := loadStock(tx)
	if err != nil {
		return nil, err
	}
	if s == nil {
		return 0, nil
	}
	return s.Available, nil
}

// reserveStock moves quantity from available to reserved, failing if not
// enough units are available.
func reserveStock(tx *store.Tx) (any, error) {
	args, ok := tx.Args.(QuantityArgs)
	if !ok {
		return nil, fmt.Errorf("b2w: ReserveStock wants QuantityArgs, got %T", tx.Args)
	}
	s, err := loadStock(tx)
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, ErrNotFound
	}
	if s.Available < args.Quantity {
		return nil, ErrInsufficientStock
	}
	s = s.clone()
	s.Available -= args.Quantity
	s.Reserved += args.Quantity
	return s.Available, tx.Put(TableStock, tx.Key, s)
}

// purchaseStock converts reserved units into purchased units.
func purchaseStock(tx *store.Tx) (any, error) {
	args, ok := tx.Args.(QuantityArgs)
	if !ok {
		return nil, fmt.Errorf("b2w: PurchaseStock wants QuantityArgs, got %T", tx.Args)
	}
	s, err := loadStock(tx)
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, ErrNotFound
	}
	s = s.clone()
	n := min(args.Quantity, s.Reserved)
	s.Reserved -= n
	s.Purchased += n
	return n, tx.Put(TableStock, tx.Key, s)
}

// cancelStockReservation returns reserved units to availability.
func cancelStockReservation(tx *store.Tx) (any, error) {
	args, ok := tx.Args.(QuantityArgs)
	if !ok {
		return nil, fmt.Errorf("b2w: CancelStockReservation wants QuantityArgs, got %T", tx.Args)
	}
	s, err := loadStock(tx)
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, ErrNotFound
	}
	s = s.clone()
	n := min(args.Quantity, s.Reserved)
	s.Reserved -= n
	s.Available += n
	return n, tx.Put(TableStock, tx.Key, s)
}

// createStockTransaction records that an item in a cart has been reserved.
func createStockTransaction(tx *store.Tx) (any, error) {
	args, ok := tx.Args.(StockTxArgs)
	if !ok {
		return nil, fmt.Errorf("b2w: CreateStockTransaction wants StockTxArgs, got %T", tx.Args)
	}
	st := &StockTransaction{
		ID:       tx.Key,
		CartID:   args.CartID,
		SKU:      args.SKU,
		Quantity: args.Quantity,
		Status:   StockTxReserved,
	}
	return st.ID, tx.Put(TableStockTx, tx.Key, st)
}

// getStockTransaction retrieves a stock transaction.
func getStockTransaction(tx *store.Tx) (any, error) {
	v, ok, err := tx.Get(TableStockTx, tx.Key)
	if err != nil || !ok {
		return nil, err
	}
	st := *(v.(*StockTransaction))
	return &st, nil
}

// updateStockTransaction changes the status of a stock transaction to mark
// it purchased or cancelled.
func updateStockTransaction(tx *store.Tx) (any, error) {
	args, ok := tx.Args.(StatusArgs)
	if !ok {
		return nil, fmt.Errorf("b2w: UpdateStockTransaction wants StatusArgs, got %T", tx.Args)
	}
	switch args.Status {
	case StockTxPurchased, StockTxCancelled, StockTxReserved:
	default:
		return nil, fmt.Errorf("b2w: invalid stock transaction status %q", args.Status)
	}
	v, ok, err := tx.Get(TableStockTx, tx.Key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotFound
	}
	st := v.(*StockTransaction).clone()
	st.Status = args.Status
	return st.Status, tx.Put(TableStockTx, tx.Key, st)
}

func loadCheckout(tx *store.Tx) (*Checkout, error) {
	v, ok, err := tx.Get(TableCheckout, tx.Key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	c, ok := v.(*Checkout)
	if !ok {
		return nil, fmt.Errorf("b2w: row %q is not a checkout", tx.Key)
	}
	return c, nil
}

// createCheckout starts the checkout process from a cart snapshot.
func createCheckout(tx *store.Tx) (any, error) {
	args, ok := tx.Args.(CheckoutArgs)
	if !ok {
		return nil, fmt.Errorf("b2w: CreateCheckout wants CheckoutArgs, got %T", tx.Args)
	}
	var total int64
	for _, l := range args.Lines {
		total += int64(l.Quantity) * l.UnitPrice
	}
	c := &Checkout{
		ID:     tx.Key,
		CartID: args.CartID,
		Lines:  append([]CartLine(nil), args.Lines...),
		Total:  total,
	}
	return c.ID, tx.Put(TableCheckout, tx.Key, c)
}

// createCheckoutPayment adds payment information to the checkout.
func createCheckoutPayment(tx *store.Tx) (any, error) {
	args, ok := tx.Args.(Payment)
	if !ok {
		return nil, fmt.Errorf("b2w: CreateCheckoutPayment wants Payment, got %T", tx.Args)
	}
	c, err := loadCheckout(tx)
	if err != nil {
		return nil, err
	}
	if c == nil {
		return nil, ErrNotFound
	}
	c = c.clone()
	c.Payments = append(c.Payments, args)
	return len(c.Payments), tx.Put(TableCheckout, tx.Key, c)
}

// addLineToCheckout adds an item to the checkout object.
func addLineToCheckout(tx *store.Tx) (any, error) {
	args, ok := tx.Args.(LineArgs)
	if !ok {
		return nil, fmt.Errorf("b2w: AddLineToCheckout wants LineArgs, got %T", tx.Args)
	}
	c, err := loadCheckout(tx)
	if err != nil {
		return nil, err
	}
	if c == nil {
		return nil, ErrNotFound
	}
	c = c.clone()
	c.Lines = append(c.Lines, CartLine{SKU: args.SKU, Quantity: args.Quantity, UnitPrice: args.UnitPrice})
	c.Total += int64(args.Quantity) * args.UnitPrice
	return len(c.Lines), tx.Put(TableCheckout, tx.Key, c)
}

// deleteLineFromCheckout removes an item from the checkout object.
func deleteLineFromCheckout(tx *store.Tx) (any, error) {
	args, ok := tx.Args.(LineArgs)
	if !ok {
		return nil, fmt.Errorf("b2w: DeleteLineFromCheckout wants LineArgs, got %T", tx.Args)
	}
	c, err := loadCheckout(tx)
	if err != nil || c == nil {
		return nil, err
	}
	c = c.clone()
	for i := range c.Lines {
		if c.Lines[i].SKU == args.SKU {
			c.Total -= int64(c.Lines[i].Quantity) * c.Lines[i].UnitPrice
			c.Lines = append(c.Lines[:i], c.Lines[i+1:]...)
			break
		}
	}
	return len(c.Lines), tx.Put(TableCheckout, tx.Key, c)
}

// getCheckout retrieves the checkout object.
func getCheckout(tx *store.Tx) (any, error) {
	c, err := loadCheckout(tx)
	if err != nil {
		return nil, err
	}
	if c == nil {
		return nil, nil
	}
	out := *c
	out.Lines = append([]CartLine(nil), c.Lines...)
	out.Payments = append([]Payment(nil), c.Payments...)
	return &out, nil
}

// deleteCheckout removes the checkout object.
func deleteCheckout(tx *store.Tx) (any, error) {
	return nil, tx.Delete(TableCheckout, tx.Key)
}
