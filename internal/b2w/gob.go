package b2w

import "encoding/gob"

// The durable command log (internal/wal) gob-encodes transaction arguments
// and checkpoint-image rows as interface values, which requires every
// concrete type that can appear there to be registered. gob allows exactly
// one registered form per base type and the registered form decides the
// decoded shape, so row types register as pointers (rows live in tables as
// *Cart etc. and must come back that way) while argument structs register as
// values (DecodeArgs returns values). The bulk-load procedures accept either
// shape, since a replayed load command decodes its row argument as a
// pointer.
func init() {
	gob.Register(LineArgs{})
	gob.Register(QuantityArgs{})
	gob.Register(StockTxArgs{})
	gob.Register(StatusArgs{})
	gob.Register(CheckoutArgs{})
	gob.Register(Payment{})
	gob.Register(CartLine{})
	gob.Register(&Cart{})
	gob.Register(&Checkout{})
	gob.Register(&StockItem{})
	gob.Register(&StockTransaction{})
}
