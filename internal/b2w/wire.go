package b2w

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// DecodeArgs is the wire codec for the benchmark's transactions: it decodes
// a request's raw JSON arguments into the concrete value each stored
// procedure type-asserts (the server.ArgsDecoder for a b2w engine). The
// bulk-loading procedures are covered too, so a remote process could drive
// loading as well as the trace mix.
func DecodeArgs(txn string, raw json.RawMessage) (any, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return nil, nil
	}
	switch txn {
	case TxnAddLineToCart, TxnDeleteLineFromCart, TxnAddLineToCheckout, TxnDeleteLineFromCheckout:
		return decodeInto[LineArgs](raw)
	case TxnReserveStock, TxnPurchaseStock, TxnCancelStockReservation:
		return decodeInto[QuantityArgs](raw)
	case TxnCreateStockTransaction:
		return decodeInto[StockTxArgs](raw)
	case TxnUpdateStockTransaction:
		return decodeInto[StatusArgs](raw)
	case TxnCreateCheckout:
		return decodeInto[CheckoutArgs](raw)
	case TxnCreateCheckoutPayment:
		return decodeInto[Payment](raw)
	case TxnGetCart, TxnDeleteCart, TxnReserveCart, TxnGetStock, TxnGetStockQuantity,
		TxnGetStockTransaction, TxnGetCheckout, TxnDeleteCheckout:
		// Argument-free transactions: tolerate an explicit empty object.
		return nil, nil
	case txnLoadCart:
		return decodeInto[Cart](raw)
	case txnLoadCheckout:
		return decodeInto[Checkout](raw)
	case txnLoadStock:
		return decodeInto[StockItem](raw)
	default:
		return nil, fmt.Errorf("b2w: no argument codec for transaction %q", txn)
	}
}

// DecodeRow is the chunk codec for the benchmark's stored rows: it rebuilds
// the concrete pointer type a table stores (the wire.RowDecoder for a b2w
// node), so rows arriving in a migrated chunk are indistinguishable from
// rows written locally.
func DecodeRow(table string, raw json.RawMessage) (any, error) {
	switch table {
	case TableCart:
		return decodeRow[Cart](raw)
	case TableCheckout:
		return decodeRow[Checkout](raw)
	case TableStock:
		return decodeRow[StockItem](raw)
	case TableStockTx:
		return decodeRow[StockTransaction](raw)
	default:
		return nil, fmt.Errorf("b2w: no row codec for table %q", table)
	}
}

// decodeRow unmarshals raw into *T — the pointer form the stored procedures
// type-assert — rejecting unknown fields like the argument codec does.
func decodeRow[T any](raw json.RawMessage) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	v := new(T)
	if err := dec.Decode(v); err != nil {
		return nil, err
	}
	return v, nil
}

// decodeInto unmarshals raw into a value of T, rejecting unknown fields so
// a client/server schema drift fails loudly instead of zeroing arguments.
func decodeInto[T any](raw json.RawMessage) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var v T
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}
