// Package b2w implements the open-source B2W retail benchmark of the paper
// (Section 7 and Appendix C): the shopping-cart / checkout / stock schema of
// Figure 14, all nineteen stored procedures of Table 4, a data loader, and a
// trace-driven workload driver. Every transaction accesses a single
// partitioning key (a cart id, checkout id, stock SKU or stock-transaction
// id), matching the paper's single-partition workload assumption.
package b2w

// Table names in the engine.
const (
	TableCart     = "CART"
	TableCheckout = "CHECKOUT"
	TableStock    = "STOCK"
	TableStockTx  = "STOCK_TRANSACTION"
)

// CartLine is one item in a shopping cart.
type CartLine struct {
	// SKU identifies the product.
	SKU string
	// Quantity is the number of units.
	Quantity int
	// UnitPrice is the price in cents.
	UnitPrice int64
	// Reserved marks the line as reserved during checkout.
	Reserved bool
}

// Cart is a customer shopping cart (the CART table).
type Cart struct {
	// ID is the unique cart identifier (the partitioning key).
	ID string
	// Customer identifies the owner.
	Customer string
	// Lines are the cart's items.
	Lines []CartLine
	// Total is the cart value in cents.
	Total int64
}

// Payment carries checkout payment information.
type Payment struct {
	// Method is the payment instrument (e.g. "credit", "boleto").
	Method string
	// Amount is the payment value in cents.
	Amount int64
}

// Checkout is an in-progress purchase (the CHECKOUT table).
type Checkout struct {
	// ID is the unique checkout identifier (the partitioning key).
	ID string
	// CartID references the originating cart.
	CartID string
	// Lines are the items being purchased.
	Lines []CartLine
	// Payments are the registered payments.
	Payments []Payment
	// Total is the checkout value in cents.
	Total int64
}

// StockItem is the inventory record for one SKU (the STOCK table).
type StockItem struct {
	// SKU identifies the product (the partitioning key).
	SKU string
	// Available is the sellable quantity.
	Available int
	// Reserved is the quantity held for pending checkouts.
	Reserved int
	// Purchased is the cumulative quantity sold.
	Purchased int
}

// Stock transaction statuses.
const (
	StockTxReserved  = "RESERVED"
	StockTxPurchased = "PURCHASED"
	StockTxCancelled = "CANCELLED"
)

// StockTransaction records a reservation of stock for a cart line (the
// STOCK_TRANSACTION table).
type StockTransaction struct {
	// ID is the unique transaction identifier (the partitioning key).
	ID string
	// CartID references the cart the reservation belongs to.
	CartID string
	// SKU and Quantity describe what was reserved.
	SKU      string
	Quantity int
	// Status is one of the StockTx* constants.
	Status string
}

// The clone methods below give every mutating procedure a private copy of a
// stored row before it writes. Stored rows are immutable once Put — the
// copy-on-write convention the recovery subsystem's fuzzy checkpoints rely
// on: a checkpoint image aliases row values, so a later transaction must
// never mutate a row the image also references.

// clone returns a deep copy of the cart (the Lines slice is copied).
func (c *Cart) clone() *Cart {
	out := *c
	out.Lines = append([]CartLine(nil), c.Lines...)
	return &out
}

// clone returns a copy of the stock item (all fields are scalar).
func (s *StockItem) clone() *StockItem {
	out := *s
	return &out
}

// clone returns a copy of the stock transaction (all fields are scalar).
func (st *StockTransaction) clone() *StockTransaction {
	out := *st
	return &out
}

// clone returns a deep copy of the checkout (Lines and Payments are copied).
func (c *Checkout) clone() *Checkout {
	out := *c
	out.Lines = append([]CartLine(nil), c.Lines...)
	out.Payments = append([]Payment(nil), c.Payments...)
	return &out
}
