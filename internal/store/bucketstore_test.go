package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomStore fills a bucketStore with a random population and returns a
// deep copy of the expected contents for later comparison.
func randomStore(rng *rand.Rand, buckets int) (*bucketStore, map[int]map[string]map[string]any) {
	s := newBucketStore()
	want := make(map[int]map[string]map[string]any)
	tables := []string{"carts", "checkouts", "stock"}
	for b := 0; b < buckets; b++ {
		if rng.Intn(4) == 0 {
			continue // leave some buckets empty
		}
		for _, tbl := range tables {
			n := rng.Intn(6)
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("%s-%d-%d", tbl, b, i)
				val := rng.Intn(1000)
				s.put(b, tbl, key, val)
				if want[b] == nil {
					want[b] = make(map[string]map[string]any)
				}
				if want[b][tbl] == nil {
					want[b][tbl] = make(map[string]any)
				}
				want[b][tbl][key] = val
			}
		}
	}
	return s, want
}

// TestBucketStoreExtractInstallRoundTrip is the migration data-plane
// property: extracting buckets from one store and installing them into
// another must reproduce the data exactly, and the incrementally maintained
// row counts must agree with the actual contents at every step.
func TestBucketStoreExtractInstallRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const buckets = 32
		src, want := randomStore(rng, buckets)
		wantRows := src.totalRows()

		// Extract a random subset, then the rest, in shuffled order.
		all := rng.Perm(buckets)
		cut := rng.Intn(buckets + 1)
		first, second := all[:cut], all[cut:]

		dst := newBucketStore()
		for _, chunk := range [][]int{first, second} {
			data := src.extract(chunk)
			// The bundle's own accounting must match its contents.
			carried := 0
			for _, b := range data.Buckets() {
				n := 0
				for _, tbl := range data.data[b] {
					n += len(tbl)
				}
				if got := data.BucketRows(b); got != n {
					t.Fatalf("seed %d: BucketRows(%d) = %d, want %d", seed, b, got, n)
				}
				carried += n
			}
			if data.Rows() != carried {
				t.Fatalf("seed %d: bundle Rows() = %d, want %d", seed, data.Rows(), carried)
			}
			if added := dst.install(data); added != carried {
				t.Fatalf("seed %d: install added %d rows, want %d", seed, added, carried)
			}
		}

		if src.totalRows() != 0 {
			t.Fatalf("seed %d: source still has %d rows after full extraction", seed, src.totalRows())
		}
		if dst.totalRows() != wantRows {
			t.Fatalf("seed %d: destination has %d rows, want %d", seed, dst.totalRows(), wantRows)
		}
		got := map[int]map[string]map[string]any{}
		for b, tables := range dst.data {
			got[b] = map[string]map[string]any{}
			for tn, tbl := range tables {
				got[b][tn] = map[string]any{}
				for k, v := range tbl {
					got[b][tn][k] = v
				}
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: round-tripped data differs from original", seed)
		}
	}
}

// TestBucketStoreInstallMerge checks collision accounting: installing a
// bundle over existing data counts only genuinely new rows.
func TestBucketStoreInstallMerge(t *testing.T) {
	a := newBucketStore()
	a.put(1, "t", "shared", "old")
	a.put(1, "t", "mine", 1)

	b := newBucketStore()
	b.put(1, "t", "shared", "new")
	b.put(1, "t", "yours", 2)
	b.put(2, "u", "other", 3)

	added := a.install(b.extract([]int{1, 2}))
	if added != 2 { // "yours" and "other"; "shared" is an overwrite
		t.Errorf("install added %d rows, want 2", added)
	}
	if a.totalRows() != 4 {
		t.Errorf("totalRows = %d, want 4", a.totalRows())
	}
	if v, ok := a.get(1, "t", "shared"); !ok || v != "new" {
		t.Errorf("shared row = %v, %v; want new row to win", v, ok)
	}
	if a.bucketRows(1) != 3 || a.bucketRows(2) != 1 {
		t.Errorf("bucketRows = %d/%d, want 3/1", a.bucketRows(1), a.bucketRows(2))
	}
}

// TestEngineRandomizedMovesPreserveRows drives the full engine through a
// randomized move sequence and asserts the typed row accounting never
// drifts: TotalRows and the per-partition counters always match the data.
func TestEngineRandomizedMovesPreserveRows(t *testing.T) {
	cfg := smallConfig()
	e := testEngine(t, cfg)
	registerKV(t, e)
	e.Start()
	const keys = 150
	for i := 0; i < keys; i++ {
		if _, err := e.Execute("put", fmt.Sprintf("prop-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	parts := cfg.MaxMachines * cfg.PartitionsPerMachine
	rng := rand.New(rand.NewSource(99))
	for move := 0; move < 40; move++ {
		from := rng.Intn(parts)
		owned := e.OwnedBuckets(from)
		if len(owned) == 0 {
			continue
		}
		to := rng.Intn(parts)
		n := 1 + rng.Intn(len(owned))
		rng.Shuffle(len(owned), func(i, j int) { owned[i], owned[j] = owned[j], owned[i] })
		if _, err := e.MoveBuckets(owned[:n], from, to, 0, 0); err != nil {
			t.Fatalf("move %d: %v", move, err)
		}
		if got := e.TotalRows(); got != keys {
			t.Fatalf("move %d: TotalRows = %d, want %d", move, got, keys)
		}
		sum := 0
		for p := 0; p < parts; p++ {
			sum += e.PartitionRows(p)
		}
		if sum != keys {
			t.Fatalf("move %d: sum of PartitionRows = %d, want %d", move, sum, keys)
		}
	}
	for i := 0; i < keys; i++ {
		v, err := e.Execute("get", fmt.Sprintf("prop-%d", i), nil)
		if err != nil || v != i {
			t.Fatalf("prop-%d = %v, %v after moves", i, v, err)
		}
	}
}
