package store

import "sort"

// tableMap is the contents of one bucket: table -> key -> row.
type tableMap map[string]map[string]any

// BucketData is a typed bundle of bucket contents in flight between
// partitions during migration. Row counts are tracked per bucket as rows are
// written, so extraction and chunk accounting never re-derive counts by
// walking the nested maps.
type BucketData struct {
	data map[int]tableMap
	rows map[int]int
}

// Rows returns the total number of rows carried by the bundle.
func (d BucketData) Rows() int {
	total := 0
	for _, n := range d.rows {
		total += n
	}
	return total
}

// BucketRows returns the number of rows carried for one bucket.
func (d BucketData) BucketRows(bucket int) int { return d.rows[bucket] }

// Buckets lists the bucket ids carried by the bundle, sorted ascending.
func (d BucketData) Buckets() []int {
	out := make([]int, 0, len(d.data))
	for b := range d.data {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// NewBucketData returns an empty bundle ready for AddRow — the decode side
// of the wire representation of a migrating chunk.
func NewBucketData() BucketData {
	return BucketData{data: make(map[int]tableMap), rows: make(map[int]int)}
}

// AddRow adds one row to the bundle under (bucket, table, key). Later adds
// win on key collision, matching install semantics.
func (d BucketData) AddRow(bucket int, table, key string, row any) {
	b := d.data[bucket]
	if b == nil {
		b = make(tableMap)
		d.data[bucket] = b
	}
	t := b[table]
	if t == nil {
		t = make(map[string]any)
		b[table] = t
	}
	if _, exists := t[key]; !exists {
		d.rows[bucket]++
	}
	t[key] = row
}

// ForEachRow visits every row carried by the bundle in deterministic order
// (bucket, then table name, then key, all ascending) — the encode side of
// the wire representation, ordered so serialized chunks are byte-stable.
func (d BucketData) ForEachRow(fn func(bucket int, table, key string, row any)) {
	for _, b := range d.Buckets() {
		tables := d.data[b]
		names := make([]string, 0, len(tables))
		for tn := range tables {
			names = append(names, tn)
		}
		sort.Strings(names)
		for _, tn := range names {
			t := tables[tn]
			keys := make([]string, 0, len(t))
			for k := range t {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fn(b, tn, k, t[k])
			}
		}
	}
}

// bucketStore is a partition's data plane: the rows of every bucket the
// partition owns, plus per-bucket row counts maintained incrementally. It is
// confined to the owning executor goroutine — no locking.
type bucketStore struct {
	data map[int]tableMap
	rows map[int]int
}

func newBucketStore() *bucketStore {
	return &bucketStore{data: make(map[int]tableMap), rows: make(map[int]int)}
}

// get returns the row stored under (bucket, table, key).
func (s *bucketStore) get(bucket int, table, key string) (any, bool) {
	t, ok := s.data[bucket][table]
	if !ok {
		return nil, false
	}
	v, ok := t[key]
	return v, ok
}

// put stores a row under (bucket, table, key) and reports whether the row is
// new (true) or an overwrite (false).
func (s *bucketStore) put(bucket int, table, key string, v any) bool {
	b := s.data[bucket]
	if b == nil {
		b = make(tableMap)
		s.data[bucket] = b
	}
	t := b[table]
	if t == nil {
		t = make(map[string]any)
		b[table] = t
	}
	_, exists := t[key]
	t[key] = v
	if !exists {
		s.rows[bucket]++
	}
	return !exists
}

// del removes the row under (bucket, table, key) and reports whether a row
// was actually removed.
func (s *bucketStore) del(bucket int, table, key string) bool {
	t, ok := s.data[bucket][table]
	if !ok {
		return false
	}
	if _, exists := t[key]; !exists {
		return false
	}
	delete(t, key)
	s.rows[bucket]--
	return true
}

// extract removes the given buckets from the store and returns them as a
// BucketData bundle. Buckets with no data are simply absent from the bundle.
func (s *bucketStore) extract(buckets []int) BucketData {
	out := BucketData{data: make(map[int]tableMap, len(buckets)), rows: make(map[int]int, len(buckets))}
	for _, b := range buckets {
		if tables, ok := s.data[b]; ok {
			out.data[b] = tables
			out.rows[b] = s.rows[b]
			delete(s.data, b)
			delete(s.rows, b)
		}
	}
	return out
}

// install merges a BucketData bundle into the store and returns the number
// of rows actually added. Buckets already present are merged table by table
// (a row carried by the bundle wins on key collision); per-bucket row counts
// are maintained incrementally, never by walking unrelated data.
func (s *bucketStore) install(d BucketData) int {
	added := 0
	for b, tables := range d.data {
		if s.data[b] == nil {
			s.data[b] = tables
			s.rows[b] += d.rows[b]
			added += d.rows[b]
			continue
		}
		for tn, t := range tables {
			if s.data[b][tn] == nil {
				s.data[b][tn] = t
				s.rows[b] += len(t)
				added += len(t)
				continue
			}
			for k, v := range t {
				if _, exists := s.data[b][tn][k]; !exists {
					s.rows[b]++
					added++
				}
				s.data[b][tn][k] = v
			}
		}
	}
	return added
}

// totalRows returns the store's row count across all buckets.
func (s *bucketStore) totalRows() int {
	total := 0
	for _, n := range s.rows {
		total += n
	}
	return total
}

// bucketRows returns the row count of one bucket.
func (s *bucketStore) bucketRows(bucket int) int { return s.rows[bucket] }
