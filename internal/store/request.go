package store

import (
	"sync"
	"time"
)

// The partition queues carry a typed request union instead of `chan any`:
// sending a small struct by value avoids the per-request interface boxing
// allocation, and the hot transaction path reuses pooled txnRequest objects
// (including their reply channels) so a steady-state Execute performs no
// per-call allocation at all.
type request struct {
	// txn is set for transaction executions — the hot path.
	txn *txnRequest
	// ctl is set for control-plane work (bucket move-out / install).
	ctl *ctlRequest
}

// txnRequest is one transaction submission. Instances are pooled: the reply
// channel is allocated once per pooled object and reused across requests.
type txnRequest struct {
	id       TxnID
	key      string
	bucket   int32
	forwards int32
	args     any
	submit   time.Time
	reply    chan txnResult
}

type txnResult struct {
	value any
	err   error
}

var txnReqPool = sync.Pool{
	New: func() any {
		return &txnRequest{reply: make(chan txnResult, 1)}
	},
}

// acquireTxnReq returns a pooled request ready for reuse.
func acquireTxnReq() *txnRequest {
	return txnReqPool.Get().(*txnRequest)
}

// releaseTxnReq returns a request to the pool. The caller must have consumed
// the (exactly one) reply, so the channel is empty and no other goroutine
// still references the object.
func releaseTxnReq(r *txnRequest) {
	r.key = ""
	r.args = nil
	r.forwards = 0
	txnReqPool.Put(r)
}

// ctlKind discriminates control-plane requests.
type ctlKind uint8

const (
	ctlMoveOut ctlKind = iota
	ctlInstall
	// ctlCrash marks the partition down (machine crash).
	ctlCrash
	// ctlSnapshot captures a fuzzy-checkpoint image of the partition.
	ctlSnapshot
	// ctlRestore rebuilds a down partition from snapshots + command replay.
	ctlRestore
	// ctlExtract is the cross-node half of a moveOut: extract the buckets,
	// pay the full send cost, flip ownership to the (remote) destination
	// partition and return the data to the caller instead of enqueueing an
	// install — the data travels over the wire to another engine instance.
	ctlExtract
)

// ctlRequest is a migration step processed by a partition executor. A
// moveOut asks the executor to extract the given buckets, hand them to the
// destination partition and flip ownership; an install carries the extracted
// BucketData into the destination executor. The executor is occupied for the
// simulated transfer cost on each side — the transaction-processing
// interference of migration.
type ctlRequest struct {
	kind ctlKind

	// moveOut fields. rollback marks the undo path of an aborted migration,
	// which down partitions must not refuse (the source still holds the
	// committed copy, so restoring it is always safe).
	buckets  []int
	dest     *partition
	perRow   time.Duration
	overhead time.Duration
	rollback bool

	// install fields.
	data BucketData
	cost time.Duration

	// restore fields.
	snaps []BucketSnapshot
	cmds  []ReplayCommand

	done chan moveResult
}

type moveResult struct {
	// rows is the row count of a move, or the replayed-command count of a
	// restore.
	rows int
	// snaps carries a snapshot reply.
	snaps []BucketSnapshot
	// data carries an extract reply (cross-node move).
	data BucketData
	err  error
}
