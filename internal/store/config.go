// Package store implements the shared-nothing, partitioned, main-memory
// OLTP engine P-Store runs on — the role H-Store plays in the paper
// (Section 2). Each data partition is owned by a single executor goroutine
// that processes transactions serially from a FIFO queue, so queueing delay
// plus service time reproduces H-Store's latency behaviour: flat while
// under capacity, exploding past saturation (Figure 7).
//
// Rows are grouped into a fixed number of virtual buckets by MurmurHash of
// their partitioning key; a partition plan maps buckets to partitions and
// is the unit of live migration. Moving a bucket occupies both the sending
// and receiving executor for a simulated transfer cost, exactly the
// interference mechanism that makes reconfiguration at peak load expensive
// in the paper (Figure 8).
package store

import (
	"fmt"
	"time"
)

// Config sizes the engine.
type Config struct {
	// MaxMachines is the largest cluster size that can ever be activated;
	// executors for machines beyond the active count exist but sit idle.
	MaxMachines int
	// PartitionsPerMachine is P, the number of data partitions (and
	// executor goroutines) per machine — the paper's deployment uses 6.
	PartitionsPerMachine int
	// Buckets is the number of virtual buckets the key space is hashed
	// into. More buckets mean finer migration granularity. Must be at
	// least MaxMachines*PartitionsPerMachine.
	Buckets int
	// ServiceTime is the simulated execution time of one transaction; the
	// paper likewise adds a small artificial delay per transaction so a
	// single server saturates at a realistic rate (Section 7).
	ServiceTime time.Duration
	// QueueCapacity is each partition executor's request queue size.
	QueueCapacity int
	// InitialMachines is the cluster size at startup.
	InitialMachines int
	// Overload arms the engine's server-side overload defenses: per-request
	// deadlines with admission control, CoDel-style shedding, and sojourn
	// tracking. The zero value disables all of them (see OverloadConfig).
	Overload OverloadConfig
	// DisableCtlLane routes control-plane requests (migration, checkpoints,
	// crash fencing) through the data queue instead of the priority lane.
	// It exists only as a regression knob: it reproduces the pre-lane
	// behavior where a saturated data backlog starves the scale-out escape
	// hatch, so tests can prove the lane is what prevents the starvation.
	DisableCtlLane bool
	// HostedMachines restricts this engine instance to a subset of the
	// cluster's machines in multi-process mode: transactions routed to a
	// partition of a non-hosted machine fail with ErrNotOwned instead of
	// executing, and their bucket data never lives here. All partitions
	// still exist (ids are cluster-global) so the plan, migration schedule
	// and fault decisions stay identical to single-process mode. Nil or
	// empty hosts every machine — the single-process reference oracle.
	HostedMachines []int
}

// DefaultConfig returns a configuration suitable for tests and examples: a
// small cluster with a service time that saturates one machine at a few
// hundred transactions per second, like the paper's slowed-down B2W mix.
func DefaultConfig() Config {
	return Config{
		MaxMachines:          10,
		PartitionsPerMachine: 6,
		Buckets:              1440,
		ServiceTime:          2 * time.Millisecond,
		QueueCapacity:        1 << 14,
		InitialMachines:      1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MaxMachines < 1 {
		return fmt.Errorf("store: MaxMachines %d must be at least 1", c.MaxMachines)
	}
	if c.PartitionsPerMachine < 1 {
		return fmt.Errorf("store: PartitionsPerMachine %d must be at least 1", c.PartitionsPerMachine)
	}
	if c.Buckets < c.MaxMachines*c.PartitionsPerMachine {
		return fmt.Errorf("store: Buckets %d must be at least MaxMachines*PartitionsPerMachine = %d",
			c.Buckets, c.MaxMachines*c.PartitionsPerMachine)
	}
	if c.ServiceTime < 0 {
		return fmt.Errorf("store: ServiceTime %v must be non-negative", c.ServiceTime)
	}
	if c.QueueCapacity < 1 {
		return fmt.Errorf("store: QueueCapacity %d must be at least 1", c.QueueCapacity)
	}
	if c.InitialMachines < 1 || c.InitialMachines > c.MaxMachines {
		return fmt.Errorf("store: InitialMachines %d must be in [1, %d]", c.InitialMachines, c.MaxMachines)
	}
	if err := c.Overload.Validate(); err != nil {
		return err
	}
	for _, m := range c.HostedMachines {
		if m < 0 || m >= c.MaxMachines {
			return fmt.Errorf("store: HostedMachines entry %d must be in [0, %d)", m, c.MaxMachines)
		}
	}
	return nil
}
