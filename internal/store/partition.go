package store

import (
	"fmt"
	"sync/atomic"
	"time"
)

// request kinds processed by a partition executor.
type txnRequest struct {
	name     string
	key      string
	bucket   int
	args     any
	submit   time.Time
	forwards int
	reply    chan txnResult
}

type txnResult struct {
	value any
	err   error
}

// moveOutRequest asks the executor to extract the given buckets, hand them
// to the destination partition and flip ownership. The executor is occupied
// for overhead + rows*perRow, modelling the CPU the migration steals from
// transaction processing on the source; the destination pays half per row
// on installation.
type moveOutRequest struct {
	buckets  []int
	dest     *partition
	perRow   time.Duration
	overhead time.Duration
	done     chan moveResult
}

// installRequest carries extracted bucket data into the destination
// executor, occupying it for `cost`.
type installRequest struct {
	buckets map[int]map[string]map[string]any
	rows    int
	cost    time.Duration
	done    chan moveResult
}

type moveResult struct {
	rows int
	err  error
}

// partition is one serially executed data partition. Its data maps are
// touched only by its executor goroutine.
type partition struct {
	id   int
	eng  *Engine
	ch   chan any
	data map[int]map[string]map[string]any // bucket -> table -> key -> row
	// rowsAtomic tracks the partition's row count; it is written by the
	// executor goroutine and read by Engine.TotalRows.
	rowsAtomic int64
	stop       chan struct{}
	done       chan struct{}
}

func newPartition(id int, eng *Engine, queueCap int) *partition {
	return &partition{
		id:   id,
		eng:  eng,
		ch:   make(chan any, queueCap),
		data: make(map[int]map[string]map[string]any),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// run is the executor loop. It drains the queue until the engine stops.
func (p *partition) run() {
	defer close(p.done)
	for {
		select {
		case <-p.stop:
			p.drain()
			return
		case req := <-p.ch:
			p.handle(req)
		}
	}
}

// drain fails any queued requests after shutdown so no submitter hangs.
func (p *partition) drain() {
	for {
		select {
		case req := <-p.ch:
			switch r := req.(type) {
			case txnRequest:
				r.reply <- txnResult{err: ErrStopped}
			case moveOutRequest:
				r.done <- moveResult{err: ErrStopped}
			case installRequest:
				r.done <- moveResult{err: ErrStopped}
			}
		default:
			return
		}
	}
}

func (p *partition) handle(req any) {
	switch r := req.(type) {
	case txnRequest:
		p.execute(r)
	case moveOutRequest:
		p.moveOut(r)
	case installRequest:
		p.install(r)
	}
}

// execute runs one transaction, forwarding it if this partition no longer
// owns the bucket (Squall-style redirection of in-flight requests).
func (p *partition) execute(r txnRequest) {
	owner := p.eng.ownerOf(r.bucket)
	if owner != p.id {
		p.eng.forward(r)
		return
	}
	fn, ok := p.eng.txns[r.name]
	if !ok {
		r.reply <- txnResult{err: ErrUnknownTxn}
		return
	}
	if st := p.eng.serviceTime(r.name); st > 0 {
		time.Sleep(st)
	}
	tx := &Tx{p: p, bucket: r.bucket, Key: r.key, Args: r.args}
	v, err := runTxn(fn, tx)
	r.reply <- txnResult{value: v, err: err}
}

// runTxn executes a stored procedure, converting a panic into an error so a
// buggy procedure cannot take its partition executor down with it.
func runTxn(fn TxnFunc, tx *Tx) (v any, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			v = nil
			err = fmt.Errorf("store: transaction panicked: %v", rec)
		}
	}()
	return fn(tx)
}

// moveOut extracts buckets, enqueues their installation at the destination,
// then flips ownership. Requests already queued behind this one see the new
// ownership and are forwarded, landing behind the install in the
// destination's FIFO queue — so no transaction can observe missing data.
func (p *partition) moveOut(r moveOutRequest) {
	extracted := make(map[int]map[string]map[string]any, len(r.buckets))
	rows := 0
	for _, b := range r.buckets {
		if data, ok := p.data[b]; ok {
			extracted[b] = data
			for _, t := range data {
				rows += len(t)
			}
			delete(p.data, b)
		}
	}
	// The executor is busy packing and sending in proportion to the data
	// actually extracted.
	if cost := r.overhead + time.Duration(rows)*r.perRow; cost > 0 {
		time.Sleep(cost)
	}
	atomic.AddInt64(&p.rowsAtomic, -int64(rows))
	install := installRequest{
		buckets: extracted,
		rows:    rows,
		cost:    r.overhead/2 + time.Duration(rows)*r.perRow/2,
		done:    r.done,
	}
	// Enqueue the install before flipping ownership: once the flip is
	// visible, forwarded transactions always queue behind the install.
	select {
	case r.dest.ch <- install:
	case <-r.dest.stop:
		r.done <- moveResult{err: ErrStopped}
		return
	}
	p.eng.setOwner(r.buckets, r.dest.id)
}

// install merges migrated buckets into this partition's data.
func (p *partition) install(r installRequest) {
	if r.cost > 0 {
		time.Sleep(r.cost)
	}
	for b, tables := range r.buckets {
		if p.data[b] == nil {
			p.data[b] = tables
			continue
		}
		for tn, t := range tables {
			if p.data[b][tn] == nil {
				p.data[b][tn] = t
				continue
			}
			for k, v := range t {
				p.data[b][tn][k] = v
			}
		}
	}
	atomic.AddInt64(&p.rowsAtomic, int64(r.rows))
	r.done <- moveResult{rows: r.rows}
}
