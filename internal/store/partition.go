package store

import (
	"fmt"
	"math"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// accessPad keeps one partition's access-counter block from sharing cache
// lines with neighboring heap objects: the counters are sliced out of the
// middle of a slightly larger allocation so a full cache line of padding
// sits on each side of the hot region.
const accessPad = 8 // int64s (64 bytes) of padding on each side

// partition is one serially executed data partition. Its bucketStore is
// touched only by its executor goroutine.
type partition struct {
	id  int
	eng *Engine
	// ch is the data queue: transaction submissions and forwards.
	ch chan request
	// ctlCh is the priority lane for control-plane requests (migration
	// move-out/install, crash fencing, checkpoints, restores). The executor
	// always serves it before the data queue, so under a saturated data
	// backlog the scale-out escape hatch is never starved by the very
	// overload it exists to relieve.
	ctlCh chan request
	store *bucketStore
	// tx is the reusable execution context handed to procedures; the
	// executor is serial, so one per partition suffices and the hot path
	// allocates nothing.
	tx Tx
	// accesses counts transactions executed per bucket since the last
	// BucketAccesses reset. Only this partition's executor writes it
	// (single-writer, cache-line-padded block); the engine aggregates
	// lazily across partitions.
	accesses []int64
	// rowsAtomic tracks the partition's row count; it is written by the
	// executor goroutine and read by Engine.TotalRows.
	rowsAtomic int64
	// down marks the partition crashed: the executor stays alive but fails
	// every transaction with ErrPartitionDown and refuses forward migrations
	// until a restore rebuilds the store. Written by the executor (ctlCrash /
	// ctlRestore), read by routing and planning code on other goroutines.
	down atomic.Bool
	// sojournEWMA is the partition's exponentially weighted moving average
	// of request sojourn time (enqueue to execution start) in nanoseconds.
	// Written only by the executor, read by admission control on submitter
	// goroutines — it is the estimate of the queueing delay a new request
	// would face here.
	sojournEWMA atomic.Int64
	// CoDel shedder state; executor-only, so no synchronization.
	codelAbove    time.Time // when sojourn first stayed above target (zero = below)
	codelDropNext time.Time // next shed per the control law
	codelDrops    int       // sheds in the current above-target episode
	stop          chan struct{}
	done          chan struct{}
}

func newPartition(id int, eng *Engine, queueCap int) *partition {
	block := make([]int64, eng.cfg.Buckets+2*accessPad)
	return &partition{
		id:       id,
		eng:      eng,
		ch:       make(chan request, queueCap),
		ctlCh:    make(chan request, queueCap),
		store:    newBucketStore(),
		accesses: block[accessPad : accessPad+eng.cfg.Buckets],
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// ctlQueue returns the queue control-plane requests for p should enter: the
// priority lane, or the data queue when the lane is disabled (the
// Config.DisableCtlLane regression knob that reproduces the pre-lane
// starvation behavior).
func (p *partition) ctlQueue() chan request {
	if p.eng.cfg.DisableCtlLane {
		return p.ch
	}
	return p.ctlCh
}

// run is the executor loop. It drains the queues until the engine stops.
// Control requests have strict priority over data requests: any control
// request enqueued before a data request is handled before it. Combined
// with moveOut's install-before-ownership-flip ordering, this preserves the
// invariant that a forwarded transaction can never observe missing data —
// see handleData.
func (p *partition) run() {
	defer close(p.done)
	for {
		// Serve pending control work first: migration, checkpoints and
		// crash fencing must not wait behind a saturated data backlog.
		select {
		case req := <-p.ctlCh:
			p.handle(req)
			continue
		default:
		}
		select {
		case <-p.stop:
			p.drain()
			return
		case req := <-p.ctlCh:
			p.handle(req)
		case req := <-p.ch:
			p.handleData(req)
		}
	}
}

// handleData processes one data-queue request, re-checking the priority lane
// first: the blocking select in run may win a data request while a control
// request is simultaneously ready, and the migration protocol needs every
// control request enqueued before a data request to also execute before it
// (an install must land before the transactions forwarded after its
// ownership flip).
func (p *partition) handleData(req request) {
	for {
		select {
		case ctl := <-p.ctlCh:
			p.handle(ctl)
			continue
		default:
		}
		break
	}
	p.handle(req)
}

// drain fails any queued requests after shutdown so no submitter hangs.
func (p *partition) drain() {
	for {
		select {
		case req := <-p.ctlCh:
			failStopped(req)
		case req := <-p.ch:
			failStopped(req)
		default:
			return
		}
	}
}

func failStopped(req request) {
	switch {
	case req.txn != nil:
		req.txn.reply <- txnResult{err: ErrStopped}
	case req.ctl != nil:
		req.ctl.done <- moveResult{err: ErrStopped}
	}
}

func (p *partition) handle(req request) {
	switch {
	case req.txn != nil:
		p.execute(req.txn)
	case req.ctl != nil:
		switch req.ctl.kind {
		case ctlMoveOut:
			p.moveOut(req.ctl)
		case ctlExtract:
			p.extractOut(req.ctl)
		case ctlInstall:
			p.install(req.ctl)
		case ctlCrash:
			p.crash(req.ctl)
		case ctlSnapshot:
			p.snapshot(req.ctl)
		case ctlRestore:
			p.restore(req.ctl)
		}
	}
}

// execute runs one transaction, forwarding it if this partition no longer
// owns the bucket (Squall-style redirection of in-flight requests).
func (p *partition) execute(r *txnRequest) {
	if owner := p.eng.ownerOf(int(r.bucket)); owner != p.id {
		p.eng.forward(r)
		return
	}
	if p.down.Load() {
		// A crashed machine executes nothing: no access counting, no
		// service time, no command logging — the request just fails.
		r.reply <- txnResult{err: partitionDownError(p.id)}
		return
	}
	if p.eng.ol.enabled {
		if err := p.overloadCheck(r); err != nil {
			r.reply <- txnResult{err: err}
			return
		}
	}
	atomic.AddInt64(&p.accesses[r.bucket], 1)
	pr := &p.eng.procs[r.id]
	if pr.svc > 0 {
		time.Sleep(pr.svc)
	}
	p.tx = Tx{p: p, bucket: int(r.bucket), Key: r.key, Args: r.args}
	v, err := runTxn(pr.fn, &p.tx)
	p.tx = Tx{} // release references to the request's key/args
	// Log before acknowledging: once the submitter sees the result, the
	// command is recoverable. Errored executions are logged too — their
	// partial effects are state, and deterministic replay reproduces them.
	if h := p.eng.cmdLog.Load(); h != nil && h.l != nil {
		h.l.AppendCommand(int(r.bucket), r.id, r.key, r.args)
	}
	r.reply <- txnResult{value: v, err: err}
}

// overloadCheck runs the executor-side overload plane for one dequeued
// transaction: it files the request's queue sojourn into the EWMA (and the
// recorder, when attached), fails requests that outlived their deadline in
// the queue, and sheds per the CoDel control law while sojourn stays above
// target. A non-nil return means the request must be failed without
// executing.
func (p *partition) overloadCheck(r *txnRequest) error {
	now := time.Now()
	sojourn := now.Sub(r.submit)
	// Single-writer EWMA with alpha 1/8: smooth enough to ride out one slow
	// transaction, fresh enough to track a building queue within a few
	// requests.
	old := p.sojournEWMA.Load()
	p.sojournEWMA.Store(old + (int64(sojourn)-old)/8)
	if rec := p.eng.recorder.Load(); rec != nil {
		rec.RecordSojourn(now, sojourn)
	}
	if d := p.eng.ol.deadline; d > 0 && sojourn > d {
		p.eng.deadlineExceeded.Add(1)
		if rec := p.eng.recorder.Load(); rec != nil {
			rec.CountDeadlineExceeded()
		}
		return fmt.Errorf("%w: queued %v past deadline %v on partition %d", ErrDeadlineExceeded, sojourn, d, p.id)
	}
	if p.codelShed(now, sojourn) {
		p.eng.shed.Add(1)
		if rec := p.eng.recorder.Load(); rec != nil {
			rec.CountShed()
		}
		return fmt.Errorf("%w: partition %d shedding (sojourn %v above target %v)", ErrOverload, p.id, sojourn, p.eng.ol.target)
	}
	return nil
}

// codelShed implements the CoDel control law over queue sojourn time:
// shedding begins once sojourn has stayed above the target for a full
// interval, then quickens with the square root of the shed count — the
// classic controlled-delay schedule — until sojourn drops below the target,
// which resets the episode.
func (p *partition) codelShed(now time.Time, sojourn time.Duration) bool {
	target := p.eng.ol.target
	if target <= 0 {
		return false
	}
	if sojourn < target {
		p.codelAbove = time.Time{}
		p.codelDrops = 0
		return false
	}
	if p.codelAbove.IsZero() {
		p.codelAbove = now
		p.codelDropNext = now.Add(p.eng.ol.interval)
		return false
	}
	if now.Before(p.codelDropNext) {
		return false
	}
	p.codelDrops++
	p.codelDropNext = now.Add(time.Duration(float64(p.eng.ol.interval) / math.Sqrt(float64(p.codelDrops))))
	return true
}

// runTxn executes a stored procedure, converting a panic into an error so a
// buggy procedure cannot take its partition executor down with it. The
// goroutine stack at the panic site is preserved in the error, since the
// executor's own stack says nothing about which procedure misbehaved.
func runTxn(fn TxnFunc, tx *Tx) (v any, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			v = nil
			err = fmt.Errorf("store: transaction panicked: %v\n%s", rec, debug.Stack())
		}
	}()
	return fn(tx)
}

// moveOut extracts buckets, enqueues their installation at the destination,
// then flips ownership. Requests already queued behind this one see the new
// ownership and are forwarded, landing behind the install in the
// destination's FIFO queue — so no transaction can observe missing data.
func (p *partition) moveOut(r *ctlRequest) {
	if p.down.Load() && !r.rollback {
		// A crashed partition cannot stream its data anywhere — the image
		// is stale by definition. Rollback moves are exempt: they restore
		// chunks the *source* still holds (Squall's source-retains-copy
		// protocol), so an aborted migration can always be undone.
		r.done <- moveResult{err: partitionDownError(p.id)}
		return
	}
	data := p.store.extract(r.buckets)
	rows := data.Rows()
	// The executor is busy packing and sending in proportion to the data
	// actually extracted.
	if cost := r.overhead + time.Duration(rows)*r.perRow; cost > 0 {
		time.Sleep(cost)
	}
	atomic.AddInt64(&p.rowsAtomic, -int64(rows))
	install := &ctlRequest{
		kind: ctlInstall,
		data: data,
		cost: r.overhead/2 + time.Duration(rows)*r.perRow/2,
		done: r.done,
	}
	// Enqueue the install before flipping ownership: once the flip is
	// visible, forwarded transactions always queue behind the install. The
	// install rides the destination's priority lane, so it cannot starve
	// behind a saturated data backlog — and since forwarded transactions
	// enter the data queue, which the executor serves only after draining
	// the lane, they still execute after the install.
	select {
	case r.dest.ctlQueue() <- request{ctl: install}:
	case <-r.dest.stop:
		r.done <- moveResult{err: ErrStopped}
		return
	}
	p.eng.setOwner(r.buckets, r.dest.id)
}

// extractOut is the cross-node half of moveOut: it extracts the buckets,
// pays the full send cost and flips ownership to the (remote) destination
// partition, but returns the data to the caller instead of enqueueing an
// install — the chunk travels over the wire to another engine instance.
// Once the flip is visible, transactions routed here fail with ErrNotOwned
// (the destination machine is not hosted on this engine) and the node's
// front end re-routes them to the destination's node, where they queue
// behind the install exactly as forwarded transactions do in-process.
func (p *partition) extractOut(r *ctlRequest) {
	if p.down.Load() && !r.rollback {
		r.done <- moveResult{err: partitionDownError(p.id)}
		return
	}
	data := p.store.extract(r.buckets)
	rows := data.Rows()
	if cost := r.overhead + time.Duration(rows)*r.perRow; cost > 0 {
		time.Sleep(cost)
	}
	atomic.AddInt64(&p.rowsAtomic, -int64(rows))
	p.eng.setOwner(r.buckets, r.dest.id)
	r.done <- moveResult{rows: rows, data: data}
}

// install merges migrated buckets into this partition's data. It proceeds
// even while the partition is down: the data was already extracted from its
// source, so refusing would lose it — and a later restore wipes and rebuilds
// the whole store anyway.
func (p *partition) install(r *ctlRequest) {
	if r.cost > 0 {
		time.Sleep(r.cost)
	}
	rows := r.data.Rows()
	added := p.store.install(r.data)
	atomic.AddInt64(&p.rowsAtomic, int64(added))
	r.done <- moveResult{rows: rows}
}

// crash marks the partition down. Requests already queued behind this one
// (and any submitted later) fail with ErrPartitionDown when the executor
// reaches them — the crash point is a position in the serial request order,
// which is what makes crash schedules deterministic.
func (p *partition) crash(r *ctlRequest) {
	p.down.Store(true)
	r.done <- moveResult{}
}

// snapshot captures a fuzzy-checkpoint image of every bucket materialized in
// this partition's store. It runs on the executor, so each bucket's image and
// its command-log head are captured atomically with respect to execution.
// Table maps are copied; row values are aliased (stored rows are immutable by
// convention).
func (p *partition) snapshot(r *ctlRequest) {
	if p.down.Load() {
		r.done <- moveResult{err: partitionDownError(p.id)}
		return
	}
	var logger CommandLogger
	if h := p.eng.cmdLog.Load(); h != nil {
		logger = h.l
	}
	snaps := make([]BucketSnapshot, 0, len(p.store.data))
	for b, tables := range p.store.data {
		copied := make(map[string]map[string]any, len(tables))
		for tn, t := range tables {
			ct := make(map[string]any, len(t))
			for k, v := range t {
				ct[k] = v
			}
			copied[tn] = ct
		}
		snap := BucketSnapshot{Bucket: b, Rows: p.store.rows[b], Tables: copied}
		if logger != nil {
			snap.LSN = logger.LogHead(b)
		}
		snaps = append(snaps, snap)
	}
	r.done <- moveResult{snaps: snaps}
}

// restore rebuilds a crashed partition: fresh store, snapshot images
// installed, command tail replayed through the registered procedures in log
// order. Replay skips service-time simulation, access counting and command
// logging — it reproduces state, not load — and ignores procedure errors,
// which replay deterministically just as they originally occurred.
func (p *partition) restore(r *ctlRequest) {
	if !p.down.Load() {
		r.done <- moveResult{err: fmt.Errorf("store: restore of live partition %d", p.id)}
		return
	}
	p.store = newBucketStore()
	for _, s := range r.snaps {
		p.store.data[s.Bucket] = s.Tables
		p.store.rows[s.Bucket] = s.Rows
	}
	replayed := 0
	for _, c := range r.cmds {
		if c.ID < 0 || int(c.ID) >= len(p.eng.procs) {
			continue
		}
		p.tx = Tx{p: p, bucket: c.Bucket, Key: c.Key, Args: c.Args}
		runTxn(p.eng.procs[c.ID].fn, &p.tx)
		p.tx = Tx{}
		replayed++
	}
	atomic.StoreInt64(&p.rowsAtomic, int64(p.store.totalRows()))
	p.down.Store(false)
	r.done <- moveResult{rows: replayed}
}
