package store

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// flakyInjector is a minimal in-package FaultInjector (the real injector
// lives in internal/faults, which imports store and so cannot be used from
// these tests). It fails forward moves with probability p and always lets
// rollbacks through, matching the fault-plane contract.
type flakyInjector struct {
	rng      *rand.Rand
	p        float64
	injected int
}

var errFlaky = errors.New("store_test: injected move failure")

func (f *flakyInjector) BeforeMove(op MoveOp) error {
	if op.Rollback {
		return nil
	}
	if f.rng.Float64() < f.p {
		f.injected++
		return errFlaky
	}
	return nil
}

// TestEngineFaultedMovesConserveRows is the fault-plane property test: a
// randomized move sequence where a random subset of moves fails at the send
// boundary must conserve every row — a failed MoveBuckets is all-or-nothing,
// leaving ownership, TotalRows, and the per-partition counters untouched.
func TestEngineFaultedMovesConserveRows(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cfg := smallConfig()
		e := testEngine(t, cfg)
		registerKV(t, e)
		e.Start()
		inj := &flakyInjector{rng: rand.New(rand.NewSource(seed)), p: 0.4}
		e.SetFaultInjector(inj)

		const keys = 120
		for i := 0; i < keys; i++ {
			if _, err := e.Execute("put", fmt.Sprintf("chaos-%d", i), i); err != nil {
				t.Fatal(err)
			}
		}

		parts := cfg.MaxMachines * cfg.PartitionsPerMachine
		rng := rand.New(rand.NewSource(seed + 1000))
		failures := 0
		for move := 0; move < 60; move++ {
			from := rng.Intn(parts)
			owned := e.OwnedBuckets(from)
			if len(owned) == 0 {
				continue
			}
			to := rng.Intn(parts)
			n := 1 + rng.Intn(len(owned))
			rng.Shuffle(len(owned), func(i, j int) { owned[i], owned[j] = owned[j], owned[i] })
			chunk := owned[:n]
			before := fmt.Sprint(e.Plan())
			if _, err := e.MoveBuckets(chunk, from, to, 0, 0); err != nil {
				if !errors.Is(err, errFlaky) {
					t.Fatalf("seed %d move %d: unexpected error %v", seed, move, err)
				}
				failures++
				if got := fmt.Sprint(e.Plan()); got != before {
					t.Fatalf("seed %d move %d: failed move changed the bucket plan", seed, move)
				}
			}
			if got := e.TotalRows(); got != keys {
				t.Fatalf("seed %d move %d: TotalRows = %d, want %d", seed, move, got, keys)
			}
			sum := 0
			for p := 0; p < parts; p++ {
				sum += e.PartitionRows(p)
			}
			if sum != keys {
				t.Fatalf("seed %d move %d: sum of PartitionRows = %d, want %d", seed, move, sum, keys)
			}
		}
		if inj.injected == 0 {
			t.Fatalf("seed %d: no faults injected at p=0.4 over 60 moves", seed)
		}
		if failures != inj.injected {
			t.Fatalf("seed %d: %d failed moves but %d injections", seed, failures, inj.injected)
		}
		// Rollback moves stay exempt even at p=1.
		inj.p = 1
		from := -1
		for p := 0; p < parts; p++ {
			if len(e.OwnedBuckets(p)) > 0 {
				from = p
				break
			}
		}
		owned := e.OwnedBuckets(from)
		if _, err := e.MoveBuckets(owned[:1], from, (from+1)%parts, 0, 0); !errors.Is(err, errFlaky) {
			t.Fatalf("seed %d: forward move at p=1 not injected: %v", seed, err)
		}
		if _, err := e.MoveBucketsRollback(owned[:1], from, (from+1)%parts, 0, 0); err != nil {
			t.Fatalf("seed %d: rollback move injected despite exemption: %v", seed, err)
		}
		for i := 0; i < keys; i++ {
			v, err := e.Execute("get", fmt.Sprintf("chaos-%d", i), nil)
			if err != nil || v != i {
				t.Fatalf("seed %d: chaos-%d = %v, %v after faulted moves", seed, i, v, err)
			}
		}
	}
}

// checkStoreCounts verifies a bucketStore's incremental per-bucket row
// counters against its actual contents.
func checkStoreCounts(t *testing.T, name string, s *bucketStore) {
	t.Helper()
	for b, tables := range s.data {
		n := 0
		for _, tbl := range tables {
			n += len(tbl)
		}
		if got := s.rows[b]; got != n {
			t.Fatalf("%s: bucket %d counter %d, actual rows %d", name, b, got, n)
		}
	}
	for b, n := range s.rows {
		if n < 0 {
			t.Fatalf("%s: bucket %d counter negative: %d", name, b, n)
		}
		if _, ok := s.data[b]; !ok && n != 0 {
			t.Fatalf("%s: bucket %d has counter %d but no data", name, b, n)
		}
	}
}

// FuzzBucketDataRoundTrip fuzzes the migration data plane's extract/install
// cycle, including the two paths an aborted move exercises: installing a
// bundle back where it came from (rollback) and re-installing a bundle that
// already landed (retry after a lost ack). Rows must be conserved across
// every interleaving and the incremental counters must never drift.
func FuzzBucketDataRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(10), false, false)
	f.Add(int64(2), uint8(0), true, false)
	f.Add(int64(3), uint8(255), false, true)
	f.Add(int64(4), uint8(17), true, true)
	f.Fuzz(func(t *testing.T, seed int64, cut uint8, abort bool, reinstall bool) {
		rng := rand.New(rand.NewSource(seed))
		const buckets = 24
		src, want := randomStore(rng, buckets)
		wantRows := src.totalRows()
		checkStoreCounts(t, "src", src)

		perm := rng.Perm(buckets)
		n := int(cut) % (buckets + 1)
		moved := perm[:n]

		data := src.extract(moved)
		carried := data.Rows()
		dst := newBucketStore()
		if added := dst.install(data); added != carried {
			t.Fatalf("install added %d rows, bundle carried %d", added, carried)
		}
		if src.totalRows()+dst.totalRows() != wantRows {
			t.Fatalf("rows not conserved mid-move: %d + %d != %d", src.totalRows(), dst.totalRows(), wantRows)
		}
		checkStoreCounts(t, "src after extract", src)
		checkStoreCounts(t, "dst after install", dst)

		if reinstall {
			// Retry after a lost ack: the same bundle arrives twice. The
			// second install must be a no-op row-wise.
			if added := dst.install(data); added != 0 {
				t.Fatalf("re-install of an already-landed bundle added %d rows", added)
			}
			checkStoreCounts(t, "dst after re-install", dst)
		}

		if abort {
			// Rollback: pull the moved buckets back out of the destination
			// and restore them to the source.
			back := dst.extract(moved)
			if back.Rows() != carried {
				t.Fatalf("rollback bundle carries %d rows, moved %d", back.Rows(), carried)
			}
			if added := src.install(back); added != carried {
				t.Fatalf("rollback restored %d rows, want %d", added, carried)
			}
			if dst.totalRows() != 0 {
				t.Fatalf("destination keeps %d rows after rollback", dst.totalRows())
			}
			final := src
			if final.totalRows() != wantRows {
				t.Fatalf("source has %d rows after rollback, want %d", final.totalRows(), wantRows)
			}
			checkStoreCounts(t, "src after rollback", src)
			assertContents(t, final, want)
			return
		}

		// Complete the move: ship the remaining buckets too and compare the
		// destination against the original population.
		rest := src.extract(perm[n:])
		dst.install(rest)
		if src.totalRows() != 0 {
			t.Fatalf("source keeps %d rows after full move", src.totalRows())
		}
		if dst.totalRows() != wantRows {
			t.Fatalf("destination has %d rows, want %d", dst.totalRows(), wantRows)
		}
		checkStoreCounts(t, "dst final", dst)
		assertContents(t, dst, want)
	})
}

// assertContents deep-compares a bucketStore against an expected population.
func assertContents(t *testing.T, s *bucketStore, want map[int]map[string]map[string]any) {
	t.Helper()
	got := map[int]map[string]map[string]any{}
	for b, tables := range s.data {
		if len(tables) == 0 {
			continue
		}
		got[b] = map[string]map[string]any{}
		for tn, tbl := range tables {
			got[b][tn] = map[string]any{}
			for k, v := range tbl {
				got[b][tn][k] = v
			}
		}
	}
	// Normalize empty tables out of want for comparison.
	norm := map[int]map[string]map[string]any{}
	for b, tables := range want {
		for tn, tbl := range tables {
			if len(tbl) == 0 {
				continue
			}
			if norm[b] == nil {
				norm[b] = map[string]map[string]any{}
			}
			norm[b][tn] = tbl
		}
	}
	if !reflect.DeepEqual(got, norm) {
		t.Fatal("store contents differ from expected population")
	}
}
