package store

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The engine's server-side overload defenses. The paper's planner guarantees
// predicted load never exceeds effective capacity (Eq. 7), but predictions
// are sometimes wrong — and when they are, an undefended engine saturates:
// queues fill, every submitter blocks, and the migration control traffic
// that could add capacity queues FIFO behind the very backlog it exists to
// relieve. Three mechanisms, all armed by OverloadConfig, keep the engine
// responsive while the provisioning layer catches up:
//
//   - Admission control: each partition executor maintains an EWMA of
//     request sojourn time (enqueue to execution start). A submission whose
//     destination's estimated queueing delay already exceeds the configured
//     deadline is rejected immediately with ErrOverload instead of joining a
//     queue it cannot clear in time.
//   - Deadline enforcement: a request that outlives its deadline while
//     queued is failed with ErrDeadlineExceeded by the executor without
//     being executed — expired work is pure waste under overload.
//   - CoDel shedding: when sojourn time stays above CoDelTarget for a full
//     CoDelInterval, the executor starts shedding requests with ErrOverload
//     at a rate that quickens with the square root of the drop count, the
//     CoDel control law, until sojourn falls back below the target.
//
// Control-plane requests (migration move-out/install, crash fencing,
// checkpoints, restores) are never shed: they travel on a separate priority
// lane (see partition.run) precisely so the escape hatch from overload —
// emergency scale-out — cannot be starved by it.

// ErrOverload is returned for transactions refused by admission control or
// shed by the CoDel controller: the request was never executed and can be
// retried against a later, larger cluster.
var ErrOverload = errors.New("store: overloaded")

// ErrDeadlineExceeded is returned for transactions that spent longer than
// their deadline waiting in a partition queue; the executor fails them
// without executing, since a reply past the deadline is worthless to the
// submitter but still costs service time.
var ErrDeadlineExceeded = errors.New("store: deadline exceeded in queue")

// OverloadConfig arms the engine's server-side overload defenses. The zero
// value disables all of them: no deadline, no admission control, no
// shedding, and no per-request sojourn tracking on the hot path.
type OverloadConfig struct {
	// Deadline is the per-request deadline, measured from submission.
	// When positive it arms both admission control (reject at enqueue when
	// the destination's estimated queueing delay exceeds it) and deadline
	// enforcement (fail expired requests at the executor). Zero disables
	// both.
	Deadline time.Duration
	// CoDelTarget is the sojourn-time target of the CoDel shedder: queueing
	// delay persistently above it means standing queue, and the executor
	// starts shedding. Zero disables shedding.
	CoDelTarget time.Duration
	// CoDelInterval is how long sojourn must stay above CoDelTarget before
	// the first shed, and the base period of the shedding control law.
	// Zero defaults to 100ms when CoDelTarget is set.
	CoDelInterval time.Duration
	// Track enables sojourn tracking (the per-partition EWMA and recorder
	// percentiles) even when no enforcement is armed — measurement without
	// policy, for baseline comparisons.
	Track bool
}

// Enabled reports whether any part of the overload plane is armed.
func (c OverloadConfig) Enabled() bool {
	return c.Deadline > 0 || c.CoDelTarget > 0 || c.Track
}

// Validate reports configuration errors.
func (c OverloadConfig) Validate() error {
	if c.Deadline < 0 {
		return fmt.Errorf("store: overload Deadline %v must be non-negative", c.Deadline)
	}
	if c.CoDelTarget < 0 {
		return fmt.Errorf("store: overload CoDelTarget %v must be non-negative", c.CoDelTarget)
	}
	if c.CoDelInterval < 0 {
		return fmt.Errorf("store: overload CoDelInterval %v must be non-negative", c.CoDelInterval)
	}
	return nil
}

// ParseOverload builds an OverloadConfig from a comma-separated spec string,
// the format of the pstore `--overload` flag:
//
//	deadline=50ms,target=5ms,interval=100ms,track=true
//
// An empty spec is a disabled (zero) config.
func ParseOverload(spec string) (OverloadConfig, error) {
	var cfg OverloadConfig
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cfg, fmt.Errorf("store: overload field %q is not key=value", field)
		}
		var err error
		switch k {
		case "deadline":
			cfg.Deadline, err = time.ParseDuration(v)
		case "target":
			cfg.CoDelTarget, err = time.ParseDuration(v)
		case "interval":
			cfg.CoDelInterval, err = time.ParseDuration(v)
		case "track":
			cfg.Track, err = strconv.ParseBool(v)
		default:
			return cfg, fmt.Errorf("store: unknown overload key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("store: parsing overload %q: %w", field, err)
		}
	}
	return cfg, cfg.Validate()
}

// String renders the config back into ParseOverload's spec format. A
// disabled config renders as the empty string.
func (c OverloadConfig) String() string {
	var parts []string
	if c.Deadline > 0 {
		parts = append(parts, fmt.Sprintf("deadline=%v", c.Deadline))
	}
	if c.CoDelTarget > 0 {
		parts = append(parts, fmt.Sprintf("target=%v", c.CoDelTarget))
	}
	if c.CoDelInterval > 0 {
		parts = append(parts, fmt.Sprintf("interval=%v", c.CoDelInterval))
	}
	if c.Track {
		parts = append(parts, "track=true")
	}
	return strings.Join(parts, ",")
}

// overloadRuntime is the engine's baked overload policy: defaults resolved
// once at construction so the hot path reads plain fields.
type overloadRuntime struct {
	enabled  bool
	deadline time.Duration
	target   time.Duration
	interval time.Duration
}

func newOverloadRuntime(c OverloadConfig) overloadRuntime {
	rt := overloadRuntime{
		enabled:  c.Enabled(),
		deadline: c.Deadline,
		target:   c.CoDelTarget,
		interval: c.CoDelInterval,
	}
	if rt.target > 0 && rt.interval == 0 {
		rt.interval = 100 * time.Millisecond
	}
	return rt
}
