package store

import (
	"errors"
	"fmt"
	"time"
)

// This file is the engine's multi-process surface. In multi-process mode one
// engine instance per OS process hosts a subset of the cluster's machines
// (Config.HostedMachines); partition ids stay cluster-global, so the plan,
// the migration schedule and every fault decision are identical to
// single-process mode. Cross-node chunk movement decomposes MoveBuckets into
// ExtractBuckets at the source node and InstallBuckets at the destination
// node, with ApplyOwnership broadcasting the flip to bystander nodes.

// ErrNotOwned reports that a request targeted a partition whose machine is
// not hosted on this engine instance. It is transient by nature — ownership
// may be mid-flip during a migration — so the wire layer maps it to a
// retryable status and node front ends forward the request to the hosting
// peer.
var ErrNotOwned = errors.New("store: partition not hosted on this node")

func notOwnedError(part int) error {
	return fmt.Errorf("%w: partition %d", ErrNotOwned, part)
}

// Hosted reports whether machine m's partitions execute on this engine
// instance. Single-process engines host every machine.
func (e *Engine) Hosted(m int) bool {
	if m < 0 || m >= len(e.hosted) {
		return false
	}
	return e.hosted[m]
}

// HostedMachines lists the machines hosted on this engine instance.
func (e *Engine) HostedMachines() []int {
	out := make([]int, 0, len(e.hosted))
	for m, h := range e.hosted {
		if h {
			out = append(out, m)
		}
	}
	return out
}

// ExtractBuckets is the source half of a cross-node MoveBuckets: it extracts
// the buckets from partition from, occupies the source executor for the full
// send cost, flips local ownership to partition to (whose machine need not
// be hosted here) and returns the extracted data for transport. The
// ownership/down-check/cost semantics mirror moveBuckets exactly, so a
// networked move interleaves with transactions the same way an in-process
// move does. Rollback extracts bypass the down check, matching
// MoveBucketsRollback.
func (e *Engine) ExtractBuckets(buckets []int, from, to int, perRow, overhead time.Duration, rollback bool) (BucketData, error) {
	if from < 0 || from >= len(e.parts) || to < 0 || to >= len(e.parts) {
		return BucketData{}, fmt.Errorf("store: partition out of range (%d -> %d)", from, to)
	}
	if from == to {
		return BucketData{}, fmt.Errorf("store: extract from partition %d to itself", from)
	}
	if !e.hosted[from/e.cfg.PartitionsPerMachine] {
		return BucketData{}, notOwnedError(from)
	}
	for _, b := range buckets {
		if own := e.ownerOf(b); own != from {
			return BucketData{}, fmt.Errorf("store: bucket %d owned by partition %d, not %d", b, own, from)
		}
	}
	if !rollback && e.parts[from].down.Load() {
		return BucketData{}, partitionDownError(from)
	}
	req := &ctlRequest{
		kind:     ctlExtract,
		buckets:  buckets,
		dest:     e.parts[to],
		perRow:   perRow,
		overhead: overhead,
		rollback: rollback,
		done:     make(chan moveResult, 1),
	}
	src := e.parts[from]
	select {
	case src.ctlQueue() <- request{ctl: req}:
	case <-src.stop:
		return BucketData{}, ErrStopped
	}
	res := <-req.done
	return res.data, res.err
}

// InstallBuckets is the destination half of a cross-node MoveBuckets: it
// merges the carried data into partition to (occupying its executor for the
// receive cost, half the send cost — the same split as an in-process move)
// and then flips local ownership to the installed partition. buckets is the
// full list the move covers — it can be wider than the buckets data carries,
// because empty buckets travel as ownership only, never as rows. Install
// before flip preserves the no-missing-data invariant: a transaction
// forwarded to this node after the flip queues behind the install in
// executor order. Installs are idempotent — re-delivering the same chunk
// adds no rows — so duplicated or reordered network delivery conserves
// TotalRows. Returns the number of rows carried by the chunk.
func (e *Engine) InstallBuckets(buckets []int, data BucketData, to int, perRow, overhead time.Duration) (int, error) {
	if to < 0 || to >= len(e.parts) {
		return 0, fmt.Errorf("store: partition %d out of range", to)
	}
	for _, b := range buckets {
		if b < 0 || b >= e.cfg.Buckets {
			return 0, fmt.Errorf("store: bucket %d out of range", b)
		}
	}
	if !e.hosted[to/e.cfg.PartitionsPerMachine] {
		return 0, notOwnedError(to)
	}
	rows := data.Rows()
	req := &ctlRequest{
		kind: ctlInstall,
		data: data,
		cost: overhead/2 + time.Duration(rows)*perRow/2,
		done: make(chan moveResult, 1),
	}
	dst := e.parts[to]
	select {
	case dst.ctlQueue() <- request{ctl: req}:
	case <-dst.stop:
		return 0, ErrStopped
	}
	res := <-req.done
	if res.err != nil {
		return 0, res.err
	}
	e.setOwner(buckets, to)
	return res.rows, nil
}

// ApplyOwnership reassigns buckets to a new owning partition in this
// engine's plan without moving any data — the ownership-flip broadcast a
// migration coordinator sends to nodes not involved in a chunk transfer, so
// every node's routing converges on the new placement.
func (e *Engine) ApplyOwnership(buckets []int, owner int) error {
	if owner < 0 || owner >= len(e.parts) {
		return fmt.Errorf("store: partition %d out of range", owner)
	}
	for _, b := range buckets {
		if b < 0 || b >= e.cfg.Buckets {
			return fmt.Errorf("store: bucket %d out of range", b)
		}
	}
	e.setOwner(buckets, owner)
	return nil
}
