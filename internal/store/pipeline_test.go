package store

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// explodingTxn is a named top-level procedure so its symbol must appear in
// the stack trace attached to the panic error.
func explodingTxn(*Tx) (any, error) {
	panic("deliberate test explosion")
}

func TestEnginePanicReportsStack(t *testing.T) {
	e := testEngine(t, smallConfig())
	registerKV(t, e)
	if err := e.Register("explode", explodingTxn); err != nil {
		t.Fatal(err)
	}
	e.Start()
	_, err := e.Execute("explode", "k", nil)
	if err == nil {
		t.Fatal("panicking transaction returned no error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "deliberate test explosion") {
		t.Errorf("error does not carry the panic value: %q", msg)
	}
	// The stack must identify the procedure that panicked, not just the
	// executor's recover site.
	if !strings.Contains(msg, "explodingTxn") {
		t.Errorf("error does not carry the panicking procedure's stack:\n%s", msg)
	}
	// The executor survives.
	if _, err := e.Execute("put", "k", 1); err != nil {
		t.Fatalf("partition dead after panic: %v", err)
	}
}

// TestEngineForwardsMidMove submits transactions while their buckets are
// being migrated and asserts they are forwarded to the new owner (counted in
// Counters().Forwarded) and still return correct results.
func TestEngineForwardsMidMove(t *testing.T) {
	e := testEngine(t, smallConfig())
	registerKV(t, e)
	e.Start()

	// Find keys that all route to partition 0.
	var keys []string
	for i := 0; len(keys) < 32; i++ {
		k := fmt.Sprintf("fwd-%d", i)
		if e.ownerOf(e.bucketOf(k)) == 0 {
			keys = append(keys, k)
		}
	}
	for i, k := range keys {
		if _, err := e.Execute("put", k, i); err != nil {
			t.Fatal(err)
		}
	}

	// Migrate all of partition 0's buckets with a large fixed overhead: the
	// move-out occupies the source executor long enough for the gets below
	// to queue behind it, see the flipped ownership, and be forwarded.
	buckets := e.OwnedBuckets(0)
	moveDone := make(chan error, 1)
	go func() {
		_, err := e.MoveBuckets(buckets, 0, 2, 0, 100*time.Millisecond)
		moveDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the move-out start

	var wg sync.WaitGroup
	errs := make([]error, len(keys))
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k string) {
			defer wg.Done()
			v, err := e.Execute("get", k, nil)
			if err != nil {
				errs[i] = err
				return
			}
			if v != i {
				errs[i] = fmt.Errorf("key %s = %v, want %d", k, v, i)
			}
		}(i, k)
	}
	wg.Wait()
	if err := <-moveDone; err != nil {
		t.Fatal(err)
	}
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if fwd := e.Counters().Forwarded; fwd == 0 {
		t.Error("no transactions were forwarded during the move")
	}
}

// TestEngineBucketAccessesSharded checks the lazily aggregated per-partition
// access counters: totals must match executions and reset must clear them.
func TestEngineBucketAccessesSharded(t *testing.T) {
	e := testEngine(t, smallConfig())
	registerKV(t, e)
	e.Start()
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := e.Execute("put", fmt.Sprintf("k-%d", i%17), i); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for _, c := range e.BucketAccesses(true) {
		total += c
	}
	if total != n {
		t.Errorf("aggregated accesses = %d, want %d", total, n)
	}
	for b, c := range e.BucketAccesses(false) {
		if c != 0 {
			t.Errorf("bucket %d access count %d after reset, want 0", b, c)
		}
	}
}

func BenchmarkEngineExecute(b *testing.B) {
	cfg := Config{
		MaxMachines:          2,
		PartitionsPerMachine: 2,
		Buckets:              64,
		ServiceTime:          0,
		QueueCapacity:        1 << 14,
		InitialMachines:      2,
	}
	e, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Register("noop", func(*Tx) (any, error) { return nil, nil }); err != nil {
		b.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	id, ok := e.Handle("noop")
	if !ok {
		b.Fatal("handle not found")
	}
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%04d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExecuteID(id, keys[i&255], nil); err != nil {
			b.Fatal(err)
		}
	}
}
