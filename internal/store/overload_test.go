package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestParseOverloadRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"deadline=50ms",
		"deadline=50ms,target=5ms,interval=100ms,track=true",
		"target=2ms",
		"track=true",
	}
	for _, spec := range cases {
		cfg, err := ParseOverload(spec)
		if err != nil {
			t.Fatalf("ParseOverload(%q): %v", spec, err)
		}
		again, err := ParseOverload(cfg.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", cfg.String(), err)
		}
		if again != cfg {
			t.Fatalf("round trip of %q: %+v != %+v", spec, again, cfg)
		}
	}
	for _, bad := range []string{"deadline", "deadline=-1s", "nope=1", "deadline=xyz", "track=maybe"} {
		if _, err := ParseOverload(bad); err == nil {
			t.Errorf("ParseOverload(%q) accepted", bad)
		}
	}
	if (OverloadConfig{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if s := (OverloadConfig{}).String(); s != "" {
		t.Errorf("zero config renders %q, want empty", s)
	}
}

// FuzzOverloadSpec checks that any spec ParseOverload accepts survives a
// String/Parse round trip unchanged — the property the pstore `--overload`
// flag depends on.
func FuzzOverloadSpec(f *testing.F) {
	f.Add("deadline=50ms,target=5ms,interval=100ms,track=true")
	f.Add("deadline=1h")
	f.Add("target=250us,interval=1s")
	f.Add("track=1")
	f.Add("")
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseOverload(spec)
		if err != nil {
			t.Skip()
		}
		again, err := ParseOverload(cfg.String())
		if err != nil {
			t.Fatalf("String %q of accepted spec %q does not reparse: %v", cfg.String(), spec, err)
		}
		if again != cfg {
			t.Fatalf("round trip of %q: %+v != %+v", spec, again, cfg)
		}
	})
}

// overloadConfig is a single-partition engine so every key routes to
// partition 0 and queue state is fully controlled by the test.
func overloadConfig(ol OverloadConfig) Config {
	return Config{
		MaxMachines:          1,
		PartitionsPerMachine: 1,
		Buckets:              16,
		ServiceTime:          0,
		QueueCapacity:        1024,
		InitialMachines:      1,
		Overload:             ol,
	}
}

// registerGate registers a transaction that blocks its executor until the
// returned release channel is closed (or a value is sent per call).
func registerGate(t *testing.T, e *Engine) chan struct{} {
	t.Helper()
	gate := make(chan struct{})
	if err := e.Register("gate", func(*Tx) (any, error) {
		<-gate
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("noop", func(*Tx) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	return gate
}

func TestDeadlineExceededInQueue(t *testing.T) {
	e := testEngine(t, overloadConfig(OverloadConfig{Deadline: 10 * time.Millisecond}))
	gate := registerGate(t, e)
	e.Start()

	// Hold the executor, queue a victim, and let it age past its deadline.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		e.Execute("gate", "k", nil)
	}()
	time.Sleep(5 * time.Millisecond) // executor now inside the gate
	var victimErr error
	go func() {
		defer wg.Done()
		_, victimErr = e.Execute("noop", "k", nil)
	}()
	time.Sleep(30 * time.Millisecond)
	close(gate)
	wg.Wait()

	if !errors.Is(victimErr, ErrDeadlineExceeded) {
		t.Fatalf("victim err = %v, want ErrDeadlineExceeded", victimErr)
	}
	cnt := e.Counters()
	if cnt.DeadlineExceeded == 0 {
		t.Error("DeadlineExceeded counter not incremented")
	}
	if cnt.Errored == 0 {
		t.Error("deadline-expired request not counted as errored")
	}
}

func TestAdmissionControlRejectsAndRecovers(t *testing.T) {
	e := testEngine(t, overloadConfig(OverloadConfig{Deadline: 5 * time.Millisecond}))
	gate := registerGate(t, e)
	e.Start()

	// Hold the executor so a queued request keeps the data queue non-empty,
	// then plant a high sojourn estimate: the next submission must be
	// refused at enqueue without ever joining the queue.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		e.Execute("gate", "k", nil)
	}()
	time.Sleep(5 * time.Millisecond)
	go func() {
		defer wg.Done()
		e.Execute("noop", "k", nil) // queued behind the gate
	}()
	deadlineWait(t, func() bool { return len(e.parts[0].ch) > 0 })
	e.parts[0].sojournEWMA.Store(int64(time.Second))

	_, err := e.ExecuteID(mustHandle(t, e, "noop"), "k", nil)
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload", err)
	}
	if got := e.Counters().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	if e.Counters().Errored != 0 {
		t.Error("admission rejection counted as errored")
	}

	// Drain the queue: with no backlog the same stale estimate must not
	// keep rejecting (the livelock guard), and execution updates the EWMA.
	close(gate)
	wg.Wait()
	deadlineWait(t, func() bool { return len(e.parts[0].ch) == 0 })
	e.parts[0].sojournEWMA.Store(int64(time.Second))
	if _, err := e.Execute("noop", "k", nil); err != nil {
		t.Fatalf("post-drain submit refused: %v", err)
	}
}

func TestCoDelShedsUnderStandingQueue(t *testing.T) {
	cfg := overloadConfig(OverloadConfig{CoDelTarget: 2 * time.Millisecond, CoDelInterval: 10 * time.Millisecond})
	cfg.ServiceTime = 3 * time.Millisecond
	e := testEngine(t, cfg)
	if err := e.Register("noop", func(*Tx) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	e.Start()
	id := mustHandle(t, e, "noop")

	// A burst far above capacity builds a standing queue: sojourn stays
	// above target for the whole run, so the CoDel law must start shedding
	// after the first interval.
	var wg sync.WaitGroup
	var shedSeen int64
	var mu sync.Mutex
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := e.ExecuteID(id, fmt.Sprintf("k%d", i), nil); errors.Is(err, ErrOverload) {
				mu.Lock()
				shedSeen++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if shedSeen == 0 {
		t.Fatal("no submission observed ErrOverload despite a standing queue")
	}
	if got := e.Counters().Shed; got == 0 {
		t.Fatal("Shed counter not incremented")
	}
}

func TestExecuteIDContextBoundedWait(t *testing.T) {
	cfg := overloadConfig(OverloadConfig{})
	cfg.QueueCapacity = 1
	e := testEngine(t, cfg)
	gate := registerGate(t, e)
	e.Start()
	id := mustHandle(t, e, "noop")

	// Saturate: the executor is inside the gate and the 1-slot queue is
	// full, so a plain ExecuteID would block indefinitely.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		e.Execute("gate", "k", nil)
	}()
	time.Sleep(5 * time.Millisecond)
	go func() {
		defer wg.Done()
		e.ExecuteID(id, "k", nil)
	}()
	deadlineWait(t, func() bool { return len(e.parts[0].ch) == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.ExecuteIDContext(ctx, id, "k", nil)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrOverload) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrOverload wrapping context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("bounded wait took %v", elapsed)
	}
	if got := e.Counters().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	close(gate)
	wg.Wait()

	// An unsaturated queue admits normally through the context path.
	if _, err := e.ExecuteIDContext(context.Background(), id, "k", nil); err != nil {
		t.Fatalf("context submit on idle engine: %v", err)
	}
}

// TestCtlLaneBypassesDataBacklog proves the priority lane: a control request
// submitted behind a deep data backlog completes while the backlog is still
// draining — and with the lane disabled, only after the entire backlog.
func TestCtlLaneBypassesDataBacklog(t *testing.T) {
	const backlog = 50
	run := func(t *testing.T, disable bool) (completedAtCtl int64) {
		cfg := overloadConfig(OverloadConfig{})
		cfg.ServiceTime = 2 * time.Millisecond
		cfg.DisableCtlLane = disable
		e := testEngine(t, cfg)
		if err := e.Register("noop", func(*Tx) (any, error) { return nil, nil }); err != nil {
			t.Fatal(err)
		}
		e.Start()
		id := mustHandle(t, e, "noop")
		var wg sync.WaitGroup
		for i := 0; i < backlog; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				e.ExecuteID(id, fmt.Sprintf("k%d", i), nil)
			}(i)
		}
		deadlineWait(t, func() bool { return len(e.parts[0].ch) >= backlog-5 })
		if _, err := e.SnapshotPartition(0); err != nil {
			t.Fatal(err)
		}
		completedAtCtl = e.Counters().Completed
		wg.Wait()
		return completedAtCtl
	}

	if done := run(t, false); done >= backlog-5 {
		t.Errorf("with the lane, snapshot returned after %d/%d data requests — lane did not bypass the backlog", done, backlog)
	}
	if done := run(t, true); done < backlog-5 {
		t.Errorf("with DisableCtlLane, snapshot returned after only %d/%d data requests — expected FIFO starvation", done, backlog)
	}
}

func mustHandle(t *testing.T, e *Engine, name string) TxnID {
	t.Helper()
	id, ok := e.Handle(name)
	if !ok {
		t.Fatalf("handle %q not found", name)
	}
	return id
}

// deadlineWait polls cond until it holds or the test deadline approaches.
func deadlineWait(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
