package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	return e
}

func smallConfig() Config {
	return Config{
		MaxMachines:          4,
		PartitionsPerMachine: 2,
		Buckets:              64,
		ServiceTime:          0,
		QueueCapacity:        1024,
		InitialMachines:      1,
	}
}

// registerKV registers a tiny key-value transaction set used across tests.
func registerKV(t *testing.T, e *Engine) {
	t.Helper()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(e.Register("put", func(tx *Tx) (any, error) {
		return nil, tx.Put("kv", tx.Key, tx.Args)
	}))
	must(e.Register("get", func(tx *Tx) (any, error) {
		v, ok, err := tx.Get("kv", tx.Key)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		return v, nil
	}))
	must(e.Register("del", func(tx *Tx) (any, error) {
		return nil, tx.Delete("kv", tx.Key)
	}))
}

func TestEngineConfigValidation(t *testing.T) {
	bad := []Config{
		{MaxMachines: 0, PartitionsPerMachine: 1, Buckets: 1, QueueCapacity: 1, InitialMachines: 1},
		{MaxMachines: 1, PartitionsPerMachine: 0, Buckets: 1, QueueCapacity: 1, InitialMachines: 1},
		{MaxMachines: 2, PartitionsPerMachine: 2, Buckets: 3, QueueCapacity: 1, InitialMachines: 1},
		{MaxMachines: 1, PartitionsPerMachine: 1, Buckets: 1, QueueCapacity: 0, InitialMachines: 1},
		{MaxMachines: 1, PartitionsPerMachine: 1, Buckets: 1, QueueCapacity: 1, InitialMachines: 0},
		{MaxMachines: 1, PartitionsPerMachine: 1, Buckets: 1, QueueCapacity: 1, InitialMachines: 2},
		{MaxMachines: 1, PartitionsPerMachine: 1, Buckets: 1, QueueCapacity: 1, InitialMachines: 1, ServiceTime: -1},
	}
	for i, cfg := range bad {
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestEngineBasicPutGet(t *testing.T) {
	e := testEngine(t, smallConfig())
	registerKV(t, e)
	e.Start()

	if _, err := e.Execute("put", "cart-1", "hello"); err != nil {
		t.Fatal(err)
	}
	v, err := e.Execute("get", "cart-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != "hello" {
		t.Fatalf("get = %v, want hello", v)
	}
	if _, err := e.Execute("del", "cart-1", nil); err != nil {
		t.Fatal(err)
	}
	v, err = e.Execute("get", "cart-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("get after delete = %v, want nil", v)
	}
}

func TestEngineUnknownTxn(t *testing.T) {
	e := testEngine(t, smallConfig())
	e.Start()
	if _, err := e.Execute("nope", "k", nil); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("err = %v, want ErrUnknownTxn", err)
	}
}

func TestEngineRegisterErrors(t *testing.T) {
	e := testEngine(t, smallConfig())
	if err := e.Register("a", func(*Tx) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("a", func(*Tx) (any, error) { return nil, nil }); err == nil {
		t.Error("duplicate registration accepted")
	}
	e.Start()
	if err := e.Register("b", func(*Tx) (any, error) { return nil, nil }); err == nil {
		t.Error("registration after start accepted")
	}
	if err := e.SetServiceTime("a", time.Millisecond); err == nil {
		t.Error("SetServiceTime after start accepted")
	}
}

func TestEngineExecuteBeforeStartAndAfterStop(t *testing.T) {
	e, err := NewEngine(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	registerKV(t, e)
	if _, err := e.Execute("put", "k", 1); err == nil {
		t.Error("execute before start accepted")
	}
	e.Start()
	if _, err := e.Execute("put", "k", 1); err != nil {
		t.Fatal(err)
	}
	e.Stop()
	if _, err := e.Execute("put", "k", 2); !errors.Is(err, ErrStopped) {
		t.Errorf("err after stop = %v, want ErrStopped", err)
	}
}

func TestEngineCrossPartitionRejected(t *testing.T) {
	e := testEngine(t, smallConfig())
	if err := e.Register("bad", func(tx *Tx) (any, error) {
		// Touch a key that almost surely hashes to a different bucket.
		for i := 0; i < 200; i++ {
			other := fmt.Sprintf("other-%d", i)
			if e.bucketOf(other) != tx.bucket {
				return nil, tx.Put("kv", other, 1)
			}
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	e.Start()
	if _, err := e.Execute("bad", "k", nil); !errors.Is(err, ErrCrossPartition) {
		t.Fatalf("err = %v, want ErrCrossPartition", err)
	}
}

func TestEngineConcurrentClients(t *testing.T) {
	e := testEngine(t, smallConfig())
	registerKV(t, e)
	if err := e.Register("incr", func(tx *Tx) (any, error) {
		v, _, err := tx.Get("kv", tx.Key)
		if err != nil {
			return nil, err
		}
		n, _ := v.(int)
		return n + 1, tx.Put("kv", tx.Key, n+1)
	}); err != nil {
		t.Fatal(err)
	}
	e.Start()

	const clients = 16
	const perClient = 100
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := e.Execute("incr", "counter", nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Serial per-partition execution must make the counter exact.
	v, err := e.Execute("get", "counter", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != clients*perClient {
		t.Fatalf("counter = %v, want %d (lost updates!)", v, clients*perClient)
	}
	c := e.Counters()
	if c.Completed != clients*perClient+1 || c.Errored != 0 || c.Submitted != c.Completed {
		t.Errorf("counters = %d submitted, %d completed, %d errored", c.Submitted, c.Completed, c.Errored)
	}
}

func TestEngineRowCount(t *testing.T) {
	e := testEngine(t, smallConfig())
	registerKV(t, e)
	e.Start()
	for i := 0; i < 50; i++ {
		if _, err := e.Execute("put", fmt.Sprintf("k-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.TotalRows(); got != 50 {
		t.Fatalf("TotalRows = %d, want 50", got)
	}
	// Overwrites do not change the count.
	if _, err := e.Execute("put", "k-0", 99); err != nil {
		t.Fatal(err)
	}
	if got := e.TotalRows(); got != 50 {
		t.Fatalf("TotalRows after overwrite = %d, want 50", got)
	}
	if _, err := e.Execute("del", "k-0", nil); err != nil {
		t.Fatal(err)
	}
	if got := e.TotalRows(); got != 49 {
		t.Fatalf("TotalRows after delete = %d, want 49", got)
	}
}

func TestEngineServiceTimeThrottles(t *testing.T) {
	cfg := smallConfig()
	cfg.ServiceTime = 5 * time.Millisecond
	e := testEngine(t, cfg)
	registerKV(t, e)
	e.Start()
	start := time.Now()
	const n = 10
	// Same key -> same partition -> serial execution: at least n*5ms.
	for i := 0; i < n; i++ {
		if _, err := e.Execute("put", "hot", i); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < n*5*time.Millisecond {
		t.Errorf("serial execution took %v, want >= %v", elapsed, n*5*time.Millisecond)
	}
}

func TestEngineMoveBucketsPreservesData(t *testing.T) {
	cfg := smallConfig()
	cfg.InitialMachines = 1
	e := testEngine(t, cfg)
	registerKV(t, e)
	e.Start()
	const keys = 200
	for i := 0; i < keys; i++ {
		if _, err := e.Execute("put", fmt.Sprintf("k-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	// Move all buckets owned by partition 0 to partition 2 (machine 1).
	buckets := e.OwnedBuckets(0)
	if len(buckets) == 0 {
		t.Fatal("partition 0 owns no buckets")
	}
	moved, err := e.MoveBuckets(buckets, 0, 2, time.Millisecond, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if moved <= 0 {
		t.Fatalf("MoveBuckets reported %d rows moved, want > 0", moved)
	}
	if got := e.OwnedBuckets(0); len(got) != 0 {
		t.Fatalf("partition 0 still owns %d buckets", len(got))
	}
	// All rows still readable, transparently routed to the new owner.
	for i := 0; i < keys; i++ {
		v, err := e.Execute("get", fmt.Sprintf("k-%d", i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("k-%d = %v after migration, want %d", i, v, i)
		}
	}
	if got := e.TotalRows(); got != keys {
		t.Fatalf("TotalRows = %d, want %d", got, keys)
	}
}

func TestEngineMoveBucketsValidation(t *testing.T) {
	e := testEngine(t, smallConfig())
	e.Start()
	if _, err := e.MoveBuckets([]int{0}, 0, 99, 0, 0); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if _, err := e.MoveBuckets([]int{0}, 1, 2, 0, 0); err == nil {
		t.Error("moving unowned bucket accepted")
	}
	if _, err := e.MoveBuckets([]int{0}, 3, 3, 0, 0); err != nil {
		t.Errorf("no-op move rejected: %v", err)
	}
}

// TestEngineLiveMigrationUnderLoad runs clients continuously while buckets
// move and verifies no transaction fails or observes missing data.
func TestEngineLiveMigrationUnderLoad(t *testing.T) {
	cfg := smallConfig()
	e := testEngine(t, cfg)
	registerKV(t, e)
	if err := e.Register("check", func(tx *Tx) (any, error) {
		v, ok, err := tx.Get("kv", tx.Key)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("row %q missing", tx.Key)
		}
		return v, nil
	}); err != nil {
		t.Fatal(err)
	}
	e.Start()
	const keys = 300
	for i := 0; i < keys; i++ {
		if _, err := e.Execute("put", fmt.Sprintf("k-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}

	stopLoad := make(chan struct{})
	var loadErr error
	var loadMu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				key := fmt.Sprintf("k-%d", i%keys)
				if v, err := e.Execute("check", key, nil); err != nil || v != i%keys {
					loadMu.Lock()
					if loadErr == nil {
						loadErr = fmt.Errorf("key %s: v=%v err=%v", key, v, err)
					}
					loadMu.Unlock()
					return
				}
				i += 7
			}
		}(c)
	}

	// Shuffle buckets around while the load runs: 0 -> 2 -> 4 -> 0.
	route := []struct{ from, to int }{{0, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 0}, {5, 1}}
	for _, mv := range route {
		buckets := e.OwnedBuckets(mv.from)
		for lo := 0; lo < len(buckets); lo += 4 {
			hi := min(lo+4, len(buckets))
			if _, err := e.MoveBuckets(buckets[lo:hi], mv.from, mv.to, 200*time.Microsecond, 100*time.Microsecond); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stopLoad)
	wg.Wait()
	if loadErr != nil {
		t.Fatalf("load failed during migration: %v", loadErr)
	}
	if got := e.TotalRows(); got != keys {
		t.Fatalf("TotalRows = %d, want %d", got, keys)
	}
}

func TestEngineActiveMachines(t *testing.T) {
	e := testEngine(t, smallConfig())
	if got := e.ActiveMachines(); got != 1 {
		t.Fatalf("initial ActiveMachines = %d, want 1", got)
	}
	if err := e.SetActiveMachines(3); err != nil {
		t.Fatal(err)
	}
	if got := e.ActiveMachines(); got != 3 {
		t.Fatalf("ActiveMachines = %d, want 3", got)
	}
	if err := e.SetActiveMachines(0); err == nil {
		t.Error("SetActiveMachines(0) accepted")
	}
	if err := e.SetActiveMachines(5); err == nil {
		t.Error("SetActiveMachines beyond max accepted")
	}
}

func TestEngineInitialPlanBalanced(t *testing.T) {
	cfg := smallConfig()
	cfg.InitialMachines = 2
	e := testEngine(t, cfg)
	counts := map[int]int{}
	for b := 0; b < cfg.Buckets; b++ {
		counts[e.ownerOf(b)]++
	}
	if len(counts) != cfg.InitialMachines*cfg.PartitionsPerMachine {
		t.Fatalf("buckets spread over %d partitions, want %d", len(counts), 4)
	}
	for part, c := range counts {
		if c != cfg.Buckets/4 {
			t.Errorf("partition %d owns %d buckets, want %d", part, c, cfg.Buckets/4)
		}
	}
}

func TestEnginePanickingTxnSurvives(t *testing.T) {
	e := testEngine(t, smallConfig())
	registerKV(t, e)
	if err := e.Register("boom", func(*Tx) (any, error) {
		panic("kaboom")
	}); err != nil {
		t.Fatal(err)
	}
	e.Start()
	if _, err := e.Execute("boom", "k", nil); err == nil {
		t.Fatal("panicking transaction returned no error")
	}
	// The partition executor must still be alive and serving.
	if _, err := e.Execute("put", "k", 42); err != nil {
		t.Fatalf("partition dead after panic: %v", err)
	}
	v, err := e.Execute("get", "k", nil)
	if err != nil || v != 42 {
		t.Fatalf("get after panic = %v, %v", v, err)
	}
}
