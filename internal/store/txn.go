package store

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// TxnFunc is the body of a stored procedure. It runs on the partition that
// owns the transaction's routing key and may only touch rows co-located
// with it — the single-partition transaction model of H-Store that the B2W
// workload satisfies (every operation accesses one partitioning key).
type TxnFunc func(tx *Tx) (any, error)

// ErrUnknownTxn is returned when executing a transaction name that was
// never registered.
var ErrUnknownTxn = errors.New("store: unknown transaction")

// ErrCrossPartition is returned when a transaction touches a key that does
// not hash to its own bucket — which would require a distributed
// transaction, unsupported by design (Section 4.2: "the workload has few
// distributed transactions").
var ErrCrossPartition = errors.New("store: key outside transaction's partition")

// ErrStopped is returned for transactions submitted after engine shutdown.
var ErrStopped = errors.New("store: engine stopped")

// Tx is the execution context handed to a TxnFunc. All accesses are served
// from the owning partition's local data — no locks are needed because each
// partition executes serially.
type Tx struct {
	p      *partition
	bucket int
	// Key is the transaction's routing (partitioning) key.
	Key string
	// Args carries the procedure's input parameters.
	Args any
}

// Get returns the row stored under (table, key), which must be co-located
// with the transaction's routing key.
func (tx *Tx) Get(table, key string) (any, bool, error) {
	if err := tx.check(key); err != nil {
		return nil, false, err
	}
	v, ok := tx.p.store.get(tx.bucket, table, key)
	return v, ok, nil
}

// Put stores a row under (table, key), co-located with the routing key.
func (tx *Tx) Put(table, key string, v any) error {
	if err := tx.check(key); err != nil {
		return err
	}
	if tx.p.store.put(tx.bucket, table, key, v) {
		atomic.AddInt64(&tx.p.rowsAtomic, 1)
	}
	return nil
}

// Delete removes the row under (table, key) if present.
func (tx *Tx) Delete(table, key string) error {
	if err := tx.check(key); err != nil {
		return err
	}
	if tx.p.store.del(tx.bucket, table, key) {
		atomic.AddInt64(&tx.p.rowsAtomic, -1)
	}
	return nil
}

func (tx *Tx) check(key string) error {
	if b := tx.p.eng.bucketOf(key); b != tx.bucket {
		return fmt.Errorf("%w: key %q is in bucket %d, transaction runs in bucket %d",
			ErrCrossPartition, key, b, tx.bucket)
	}
	return nil
}
