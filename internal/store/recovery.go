package store

import (
	"errors"
	"fmt"
)

// ErrPartitionDown is returned for transactions and forward migrations that
// touch a crashed partition. The data is not lost — a crash freezes the
// partition until a recovery manager rebuilds it from checkpoint + command
// log — but nothing executes there while it is down.
var ErrPartitionDown = errors.New("store: partition down")

// CommandLogger receives one logical log record per executed transaction —
// H-Store-style command logging, where the log captures the *input* of each
// deterministic procedure rather than its effects. AppendCommand is called by
// partition executors after the procedure ran (including procedures that
// returned an error: their partial effects are part of the state and replay
// reproduces them); LogHead is called by the snapshot path, on the same
// executor goroutine, so the returned LSN is exact for every bucket the
// executor owns.
type CommandLogger interface {
	AppendCommand(bucket int, id TxnID, key string, args any)
	LogHead(bucket int) uint64
}

// PlanLogger receives every bucket-plan mutation — ownership flips (local
// moves, networked migrations, broadcast flips) and active-machine resizes —
// so a durable log can reconstruct the plan a cold start must reinstall.
// LogPlan is called under the engine's plan mutex: calls are totally ordered
// and carry the complete new plan, so the *last* logged plan is the current
// one. A durable implementation may block (group commit); the cost lands on
// the migration path, not the transaction hot path.
type PlanLogger interface {
	LogPlan(plan []int32, active int)
}

// cmdLogHolder wraps the logger interface so it can live in an
// atomic.Pointer (and be cleared by storing a holder with a nil logger).
type cmdLogHolder struct{ l CommandLogger }

// planLogHolder mirrors cmdLogHolder for the plan logger.
type planLogHolder struct{ l PlanLogger }

// SetPlanLog attaches (or, with nil, detaches) a plan logger. Attach before
// any ownership changes the logger should capture.
func (e *Engine) SetPlanLog(l PlanLogger) {
	e.planLog.Store(&planLogHolder{l: l})
}

// SetCommandLog attaches (or, with nil, detaches) a command logger. Attach it
// before any data loads: replay reconstructs a bucket from its full command
// history, so commands executed while no logger was attached are invisible to
// recovery. Safe to call at any time.
func (e *Engine) SetCommandLog(l CommandLogger) {
	e.cmdLog.Store(&cmdLogHolder{l: l})
}

// BucketSnapshot is one bucket's fuzzy-checkpoint image: its tables at the
// moment the owning executor snapshotted it, and the command-log LSN the
// image covers. Table maps are fresh copies but row values are aliased — the
// engine's stored rows are immutable by convention (procedures copy before
// mutating), which is what makes O(rows) snapshot cloning safe.
type BucketSnapshot struct {
	// Bucket is the bucket id.
	Bucket int
	// Rows is the bucket's row count at snapshot time.
	Rows int
	// LSN is the bucket's command-log head at snapshot time: replaying
	// commands with larger LSNs on top of the image reproduces the current
	// state exactly.
	LSN uint64
	// Tables is the bucket's data: table -> key -> row.
	Tables map[string]map[string]any
}

// ReplayCommand is one command-log record handed back to a partition for
// replay during recovery.
type ReplayCommand struct {
	// Bucket is the bucket the command executed in.
	Bucket int
	// ID is the procedure's dense handle.
	ID TxnID
	// Key and Args are the procedure's original input.
	Key  string
	Args any
}

// Crash marks every partition of a machine as down. Queued transactions and
// transactions submitted while down fail with ErrPartitionDown; forward
// migrations refuse to touch the machine (rollback moves are exempt — the
// Squall source keeps its committed copy until the destination acknowledges,
// so undoing an aborted move cannot be blocked by the crash). The partition's
// memory image is abandoned, not cleared: restoration wipes it and rebuilds
// from checkpoint + command log, modeling a replacement machine.
func (e *Engine) Crash(machine int) error {
	if machine < 0 || machine >= e.cfg.MaxMachines {
		return fmt.Errorf("store: machine %d out of [0, %d)", machine, e.cfg.MaxMachines)
	}
	for _, part := range e.PartitionsOfMachine(machine) {
		req := &ctlRequest{kind: ctlCrash, done: make(chan moveResult, 1)}
		p := e.parts[part]
		select {
		case p.ctlQueue() <- request{ctl: req}:
		case <-p.stop:
			return ErrStopped
		}
		if res := <-req.done; res.err != nil {
			return res.err
		}
	}
	return nil
}

// PartitionDown reports whether a partition is crashed.
func (e *Engine) PartitionDown(part int) bool {
	if part < 0 || part >= len(e.parts) {
		return false
	}
	return e.parts[part].down.Load()
}

// MachineDown reports whether a machine is crashed (machines crash and
// recover whole, so any down partition means the machine is down).
func (e *Engine) MachineDown(m int) bool {
	for _, part := range e.PartitionsOfMachine(m) {
		if e.parts[part].down.Load() {
			return true
		}
	}
	return false
}

// DownMachines lists the crashed machines in ascending order.
func (e *Engine) DownMachines() []int {
	var out []int
	for m := 0; m < e.cfg.MaxMachines; m++ {
		if e.MachineDown(m) {
			out = append(out, m)
		}
	}
	return out
}

// SnapshotPartition captures a fuzzy checkpoint of one live partition: a
// BucketSnapshot per bucket currently materialized in its store, each stamped
// with the bucket's command-log head. The snapshot runs on the partition's
// executor — it is consistent by serial execution, not by locking — and costs
// O(tables+rows) map copying while the executor is busy, the checkpoint
// interference a real fuzzy checkpointer also pays.
func (e *Engine) SnapshotPartition(part int) ([]BucketSnapshot, error) {
	if part < 0 || part >= len(e.parts) {
		return nil, fmt.Errorf("store: partition %d out of range", part)
	}
	req := &ctlRequest{kind: ctlSnapshot, done: make(chan moveResult, 1)}
	p := e.parts[part]
	select {
	case p.ctlQueue() <- request{ctl: req}:
	case <-p.stop:
		return nil, ErrStopped
	}
	res := <-req.done
	return res.snaps, res.err
}

// RestorePartition rebuilds a crashed partition: its store is wiped, the
// snapshots installed, and the command tail replayed in log order through the
// registered procedures (deterministic replay — same inputs, same serial
// order, same state). The caller must hand over ownership of the snapshot
// maps; replay mutates them. It returns the number of commands replayed and
// clears the partition's down flag on success.
func (e *Engine) RestorePartition(part int, snaps []BucketSnapshot, cmds []ReplayCommand) (int, error) {
	if part < 0 || part >= len(e.parts) {
		return 0, fmt.Errorf("store: partition %d out of range", part)
	}
	p := e.parts[part]
	if !p.down.Load() {
		return 0, fmt.Errorf("store: partition %d is not down", part)
	}
	req := &ctlRequest{kind: ctlRestore, snaps: snaps, cmds: cmds, done: make(chan moveResult, 1)}
	select {
	case p.ctlQueue() <- request{ctl: req}:
	case <-p.stop:
		return 0, ErrStopped
	}
	res := <-req.done
	return res.rows, res.err
}

// partitionDownError wraps ErrPartitionDown with the partition id.
func partitionDownError(part int) error {
	return fmt.Errorf("%w: partition %d", ErrPartitionDown, part)
}
