package store

import (
	"fmt"
	"testing"
)

// TestTxnNamesDenseOrder checks TxnNames is the exact inverse of Handle:
// the wire server snapshots this slice as its catalog and remote clients
// index into it with dense ids, so order must match registration.
func TestTxnNamesDenseOrder(t *testing.T) {
	cfg := Config{
		MaxMachines:          1,
		PartitionsPerMachine: 2,
		Buckets:              32,
		QueueCapacity:        64,
		InitialMachines:      1,
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"alpha", "beta", "gamma"}
	for _, n := range names {
		if err := e.Register(n, func(*Tx) (any, error) { return nil, nil }); err != nil {
			t.Fatal(err)
		}
	}
	got := e.TxnNames()
	if len(got) != len(names) {
		t.Fatalf("TxnNames() has %d entries, want %d", len(got), len(names))
	}
	for i, n := range names {
		if got[i] != n {
			t.Errorf("TxnNames()[%d] = %q, want %q", i, got[i], n)
		}
		id, ok := e.Handle(n)
		if !ok || int(id) != i {
			t.Errorf("Handle(%q) = (%d, %v), want (%d, true)", n, id, ok, i)
		}
	}
	// The snapshot must be a copy: mutating it cannot corrupt the catalog.
	got[0] = "mutated"
	if again := e.TxnNames(); again[0] != "alpha" {
		t.Fatal("TxnNames returned a view into engine state")
	}
}

// TestPartitionOfKey checks the routing estimate the server's retry hints
// rely on: in range, deterministic, and covering more than one partition.
func TestPartitionOfKey(t *testing.T) {
	cfg := Config{
		MaxMachines:          2,
		PartitionsPerMachine: 2,
		Buckets:              64,
		QueueCapacity:        64,
		InitialMachines:      2,
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parts := cfg.MaxMachines * cfg.PartitionsPerMachine
	seen := make(map[int]bool)
	for i := 0; i < 256; i++ {
		key := fmt.Sprintf("key-%04d", i)
		p := e.PartitionOfKey(key)
		if p < 0 || p >= parts {
			t.Fatalf("PartitionOfKey(%q) = %d, out of [0,%d)", key, p, parts)
		}
		if again := e.PartitionOfKey(key); again != p {
			t.Fatalf("PartitionOfKey(%q) unstable: %d then %d", key, p, again)
		}
		seen[p] = true
	}
	if len(seen) < 2 {
		t.Fatalf("256 keys landed on %d partition(s); want spread", len(seen))
	}
}
