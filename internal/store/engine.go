package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/hash"
	"pstore/internal/metrics"
)

// TxnID is the dense identifier of a registered transaction type. Handles
// are resolved once (Engine.Handle) and index a slice on the hot path — no
// per-execution map lookups.
type TxnID int32

// NoTxn is an invalid handle; executing it returns ErrUnknownTxn.
const NoTxn TxnID = -1

// proc is one registered transaction type. The procs slice is immutable
// after Start, so executors index it without synchronization.
type proc struct {
	name string
	fn   TxnFunc
	svc  time.Duration
}

// Counters are the engine's cumulative transaction counts.
type Counters struct {
	// Submitted counts transactions accepted by Execute/ExecuteID.
	Submitted int64
	// Completed counts transactions that finished without error.
	Completed int64
	// Errored counts transactions that returned an error.
	Errored int64
	// Forwarded counts ownership-chase hops: transactions that reached a
	// partition which no longer owned their bucket (mid-migration) and were
	// re-routed to the current owner.
	Forwarded int64
	// Rejected counts transactions refused at submission by admission
	// control (or by a canceled submit context) without ever entering a
	// partition queue. Rejected transactions are counted in Submitted but
	// not in Errored: they represent refused offered load, not failed work.
	Rejected int64
	// Shed counts transactions dropped by the CoDel controller at the
	// executor after queueing (counted in Errored as well).
	Shed int64
	// DeadlineExceeded counts transactions that expired in a partition
	// queue and were failed without executing (counted in Errored as well).
	DeadlineExceeded int64
}

// MoveOp describes one chunk-level bucket move about to execute, as offered
// to a FaultInjector. Rollback marks the undo path of an aborted migration:
// injectors must never fail rollback operations, or chaos testing could
// wedge recovery itself.
type MoveOp struct {
	// From and To are partition ids.
	From, To int
	// Buckets are the bucket ids the chunk carries.
	Buckets []int
	// Rollback is true when the move restores a previously moved chunk.
	Rollback bool
}

// FaultInjector intercepts chunk-level bucket moves for chaos testing.
// BeforeMove runs on the migration coordinator's goroutine before the chunk
// is handed to the partition executors: returning an error fails the move
// (the chunk never leaves the source), and the injector may sleep first to
// simulate a slow or stalled transfer.
type FaultInjector interface {
	BeforeMove(op MoveOp) error
}

// faultHolder wraps the injector interface so it can live in an
// atomic.Pointer (and be cleared by storing a holder with a nil injector).
type faultHolder struct{ fi FaultInjector }

// Engine is a multi-machine, shared-nothing, main-memory OLTP engine. Every
// machine hosts PartitionsPerMachine partitions; every partition is driven
// by one executor goroutine. The engine routes transactions to the
// partition owning their key's bucket and supports live bucket migration
// between partitions for elasticity.
type Engine struct {
	cfg     Config
	handles map[string]TxnID
	procs   []proc
	// svcOverride stages SetServiceTime calls until Start bakes them into
	// the procs slice.
	svcOverride map[string]time.Duration

	parts   []*partition
	plan    atomic.Pointer[[]int32]
	planMu  sync.Mutex // serializes copy-on-write updates of plan
	started atomic.Bool
	stopped atomic.Bool

	// hosted[m] reports whether machine m's partitions execute transactions
	// on this engine instance; hostedAll short-circuits the check in
	// single-process mode so the hot path pays one predictable branch.
	hosted    []bool
	hostedAll bool

	activeMachines atomic.Int32
	submitted      atomic.Int64
	completed      atomic.Int64
	errored        atomic.Int64
	forwarded      atomic.Int64

	// ol is the baked overload policy; overload counters sit beside the
	// transaction counters above.
	ol               overloadRuntime
	rejected         atomic.Int64
	shed             atomic.Int64
	deadlineExceeded atomic.Int64

	recorder atomic.Pointer[metrics.Recorder]
	faults   atomic.Pointer[faultHolder]
	cmdLog   atomic.Pointer[cmdLogHolder]
	planLog  atomic.Pointer[planLogHolder]
}

// NewEngine constructs an engine; register transactions, then call Start.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:         cfg,
		handles:     make(map[string]TxnID),
		svcOverride: make(map[string]time.Duration),
		ol:          newOverloadRuntime(cfg.Overload),
	}
	e.hosted = make([]bool, cfg.MaxMachines)
	if len(cfg.HostedMachines) == 0 {
		e.hostedAll = true
		for m := range e.hosted {
			e.hosted[m] = true
		}
	} else {
		for _, m := range cfg.HostedMachines {
			e.hosted[m] = true
		}
	}
	total := cfg.MaxMachines * cfg.PartitionsPerMachine
	e.parts = make([]*partition, total)
	for i := range e.parts {
		e.parts[i] = newPartition(i, e, cfg.QueueCapacity)
	}
	// Initial plan: buckets spread round-robin over the initial machines'
	// partitions, so data and load start uniform (Section 4.2).
	initial := cfg.InitialMachines * cfg.PartitionsPerMachine
	plan := make([]int32, cfg.Buckets)
	for b := range plan {
		plan[b] = int32(b % initial)
	}
	e.plan.Store(&plan)
	e.activeMachines.Store(int32(cfg.InitialMachines))
	return e, nil
}

// Register adds a named transaction and assigns it the next dense TxnID. It
// must be called before Start.
func (e *Engine) Register(name string, fn TxnFunc) error {
	if e.started.Load() {
		return errors.New("store: Register after Start")
	}
	if _, dup := e.handles[name]; dup {
		return fmt.Errorf("store: transaction %q already registered", name)
	}
	e.handles[name] = TxnID(len(e.procs))
	e.procs = append(e.procs, proc{name: name, fn: fn, svc: e.cfg.ServiceTime})
	return nil
}

// Handle resolves a registered transaction name to its dense id. Resolve
// once at setup; the hot path then indexes a slice instead of a map.
func (e *Engine) Handle(name string) (TxnID, bool) {
	id, ok := e.handles[name]
	return id, ok
}

// TxnNames lists every registered transaction name in dense-id order (so
// TxnNames()[id] is the name of handle id). It is the catalog a network
// front end serves to remote clients for name resolution.
func (e *Engine) TxnNames() []string {
	out := make([]string, len(e.procs))
	for i, p := range e.procs {
		out[i] = p.name
	}
	return out
}

// PartitionOfKey returns the partition currently owning a key's bucket —
// the queue a submission for that key would join. The wire front end uses
// it to size retry hints from the destination's estimated queueing delay.
func (e *Engine) PartitionOfKey(key string) int {
	return e.ownerOf(e.bucketOf(key))
}

// SetServiceTime overrides the simulated execution time for one transaction
// type. It must be called before Start.
func (e *Engine) SetServiceTime(name string, d time.Duration) error {
	if e.started.Load() {
		return errors.New("store: SetServiceTime after Start")
	}
	e.svcOverride[name] = d
	return nil
}

// SetRecorder attaches a latency recorder; every completed transaction is
// filed into it. Safe to call at any time.
func (e *Engine) SetRecorder(r *metrics.Recorder) { e.recorder.Store(r) }

// SetFaultInjector attaches (or, with nil, detaches) a migration fault
// injector. Every forward MoveBuckets chunk is offered to it before
// executing; rollback moves bypass injection. Safe to call at any time.
func (e *Engine) SetFaultInjector(fi FaultInjector) {
	e.faults.Store(&faultHolder{fi: fi})
}

// Start bakes service-time overrides into the procedure table and launches
// all partition executors.
func (e *Engine) Start() {
	if !e.started.CompareAndSwap(false, true) {
		return
	}
	for name, d := range e.svcOverride {
		if id, ok := e.handles[name]; ok {
			e.procs[id].svc = d
		}
	}
	for _, p := range e.parts {
		go p.run()
	}
}

// Stop shuts down all executors. Pending transactions receive ErrStopped.
// Stopping a never-started engine is a no-op beyond marking it stopped.
func (e *Engine) Stop() {
	if !e.stopped.CompareAndSwap(false, true) {
		return
	}
	for _, p := range e.parts {
		close(p.stop)
	}
	if !e.started.Load() {
		return
	}
	for _, p := range e.parts {
		<-p.done
	}
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// bucketOf maps a partitioning key onto its virtual bucket.
func (e *Engine) bucketOf(key string) int {
	return hash.Partition(key, e.cfg.Buckets)
}

// ownerOf returns the partition currently owning a bucket.
func (e *Engine) ownerOf(bucket int) int {
	return int((*e.plan.Load())[bucket])
}

// setOwner atomically reassigns buckets to a new owner partition.
func (e *Engine) setOwner(buckets []int, dest int) {
	e.planMu.Lock()
	defer e.planMu.Unlock()
	old := *e.plan.Load()
	next := make([]int32, len(old))
	copy(next, old)
	for _, b := range buckets {
		next[b] = int32(dest)
	}
	e.plan.Store(&next)
	if h := e.planLog.Load(); h != nil && h.l != nil {
		h.l.LogPlan(next, int(e.activeMachines.Load()))
	}
}

// maxForwards bounds ownership-chase hops for one request; ownership
// settles after a migration, so a handful of hops always suffices.
const maxForwards = 64

// forward re-submits a transaction to the current owner of its bucket. It
// runs on an executor goroutine, so the actual send happens asynchronously
// to avoid executor-to-executor deadlock on full queues.
func (e *Engine) forward(r *txnRequest) {
	e.forwarded.Add(1)
	r.forwards++
	if r.forwards > maxForwards {
		r.reply <- txnResult{err: fmt.Errorf("store: transaction %q forwarded too many times", e.procs[r.id].name)}
		return
	}
	dest := e.parts[e.ownerOf(int(r.bucket))]
	if !e.hostedAll && !e.hosted[dest.id/e.cfg.PartitionsPerMachine] {
		// Ownership migrated off this node mid-flight; the caller (the node's
		// HTTP front end) re-routes to the new owner's node.
		r.reply <- txnResult{err: notOwnedError(dest.id)}
		return
	}
	select {
	case dest.ch <- request{txn: r}:
	default:
		go func() {
			select {
			case dest.ch <- request{txn: r}:
			case <-dest.stop:
				r.reply <- txnResult{err: ErrStopped}
			}
		}()
	}
}

// Execute routes a transaction to the partition owning key and blocks until
// it completes, returning the procedure's result. Safe for concurrent use.
// It resolves the name per call; hot loops should resolve a Handle once and
// call ExecuteID.
func (e *Engine) Execute(name, key string, args any) (any, error) {
	id, ok := e.handles[name]
	if !ok {
		id = NoTxn
	}
	return e.ExecuteID(id, key, args)
}

// ExecuteID routes a pre-resolved transaction to the partition owning key
// and blocks until it completes. The steady-state path performs no
// allocations: requests and their reply channels are pooled, and the
// procedure table is indexed, not looked up. On a saturated queue the send
// blocks until space frees; use ExecuteIDContext for a bounded wait.
func (e *Engine) ExecuteID(id TxnID, key string, args any) (any, error) {
	return e.executeID(nil, nil, id, key, args)
}

// ExecuteIDContext is ExecuteID with a bounded submission wait: if ctx is
// done before the transaction is accepted into a partition queue, the call
// returns an error wrapping both ErrOverload and ctx.Err() without the
// transaction ever being enqueued (it counts as rejected offered load, like
// an admission-control refusal). Once accepted, the transaction runs to
// completion regardless of ctx — the engine's own deadline enforcement, not
// the submitter's context, bounds queued work.
func (e *Engine) ExecuteIDContext(ctx context.Context, id TxnID, key string, args any) (any, error) {
	return e.executeID(ctx.Done(), ctx.Err, id, key, args)
}

func (e *Engine) executeID(done <-chan struct{}, ctxErr func() error, id TxnID, key string, args any) (any, error) {
	if e.stopped.Load() {
		return nil, ErrStopped
	}
	if !e.started.Load() {
		return nil, errors.New("store: engine not started")
	}
	if id < 0 || int(id) >= len(e.procs) {
		e.submitted.Add(1)
		e.errored.Add(1)
		return nil, ErrUnknownTxn
	}
	bucket := e.bucketOf(key)
	dest := e.parts[e.ownerOf(bucket)]
	if !e.hostedAll && !e.hosted[dest.id/e.cfg.PartitionsPerMachine] {
		// Not counted as submitted: the owning node will count it when the
		// front end forwards the request there, so cluster-wide counters sum
		// each transaction exactly once.
		return nil, notOwnedError(dest.id)
	}
	if e.ol.enabled {
		if err := e.admit(dest); err != nil {
			e.submitted.Add(1)
			return nil, err
		}
	}
	// A context that is already done must be refused deterministically:
	// without this check the select below is a coin flip between the queue
	// send and the done channel whenever the queue has room, and the wire
	// front end would sometimes enqueue work for a client that already gave
	// up on it.
	if done != nil {
		select {
		case <-done:
			e.submitted.Add(1)
			e.rejected.Add(1)
			if r := e.recorder.Load(); r != nil {
				r.CountRejected()
			}
			return nil, fmt.Errorf("store: submission already expired for partition %d: %w: %w", dest.id, ErrOverload, ctxErr())
		default:
		}
	}
	req := acquireTxnReq()
	req.id = id
	req.key = key
	req.bucket = int32(bucket)
	req.args = args
	req.submit = time.Now()
	e.submitted.Add(1)
	// A nil done channel never fires, so the ExecuteID path pays nothing
	// for the context plumbing.
	select {
	case dest.ch <- request{txn: req}:
	case <-dest.stop:
		releaseTxnReq(req)
		return nil, ErrStopped
	case <-done:
		releaseTxnReq(req)
		e.rejected.Add(1)
		if r := e.recorder.Load(); r != nil {
			r.CountRejected()
		}
		return nil, fmt.Errorf("store: submit canceled on saturated partition %d: %w: %w", dest.id, ErrOverload, ctxErr())
	}
	res := <-req.reply
	submit := req.submit
	releaseTxnReq(req)
	now := time.Now()
	if res.err != nil {
		e.errored.Add(1)
	} else {
		e.completed.Add(1)
	}
	if r := e.recorder.Load(); r != nil {
		r.Record(now, now.Sub(submit))
	}
	return res.value, res.err
}

// admit is admission control: a submission whose destination's estimated
// queueing delay (the executor-maintained sojourn EWMA) already exceeds the
// deadline is refused immediately instead of joining a queue it cannot clear
// in time. The refusal requires a non-empty queue: once the backlog drains,
// requests are admitted again even while the EWMA — which only updates when
// requests execute — still remembers the congestion, so admission cannot
// livelock the partition into rejecting forever.
func (e *Engine) admit(dest *partition) error {
	d := e.ol.deadline
	if d == 0 {
		return nil
	}
	if time.Duration(dest.sojournEWMA.Load()) <= d || len(dest.ch) == 0 {
		return nil
	}
	e.rejected.Add(1)
	if r := e.recorder.Load(); r != nil {
		r.CountRejected()
	}
	return fmt.Errorf("%w: partition %d estimated queueing delay %v exceeds deadline %v",
		ErrOverload, dest.id, time.Duration(dest.sojournEWMA.Load()), d)
}

// MoveBuckets live-migrates buckets between two partitions and returns the
// number of rows moved. The source executor is occupied for
// overhead + rows*perRow and the destination for half that — the
// transaction-processing interference of migration. It blocks until the
// destination has installed the data. An attached FaultInjector is consulted
// first; an injected error fails the move before any data leaves the source,
// so a failed chunk is all-or-nothing.
func (e *Engine) MoveBuckets(buckets []int, from, to int, perRow, overhead time.Duration) (int, error) {
	return e.moveBuckets(buckets, from, to, perRow, overhead, false)
}

// MoveBucketsRollback is MoveBuckets for the undo path of an aborted
// migration: fault injection is bypassed, so recovery cannot itself be
// failed by the chaos plane.
func (e *Engine) MoveBucketsRollback(buckets []int, from, to int, perRow, overhead time.Duration) (int, error) {
	return e.moveBuckets(buckets, from, to, perRow, overhead, true)
}

func (e *Engine) moveBuckets(buckets []int, from, to int, perRow, overhead time.Duration, rollback bool) (int, error) {
	if from == to {
		return 0, nil
	}
	if from < 0 || from >= len(e.parts) || to < 0 || to >= len(e.parts) {
		return 0, fmt.Errorf("store: partition out of range (%d -> %d)", from, to)
	}
	if !e.hostedAll {
		// A direct move needs both endpoints on this node; cross-node chunks
		// go through ExtractBuckets/InstallBuckets instead.
		if !e.hosted[from/e.cfg.PartitionsPerMachine] {
			return 0, notOwnedError(from)
		}
		if !e.hosted[to/e.cfg.PartitionsPerMachine] {
			return 0, notOwnedError(to)
		}
	}
	for _, b := range buckets {
		if own := e.ownerOf(b); own != from {
			return 0, fmt.Errorf("store: bucket %d owned by partition %d, not %d", b, own, from)
		}
	}
	if !rollback {
		// Forward moves refuse crashed endpoints: a down source has a stale
		// image and a down destination cannot acknowledge. Rollback moves are
		// exempt so an aborted migration can always be undone (the executors
		// stay alive while down; only transaction execution is fenced).
		if e.parts[from].down.Load() {
			return 0, partitionDownError(from)
		}
		if e.parts[to].down.Load() {
			return 0, partitionDownError(to)
		}
	}
	if h := e.faults.Load(); h != nil && h.fi != nil {
		if err := h.fi.BeforeMove(MoveOp{From: from, To: to, Buckets: buckets, Rollback: rollback}); err != nil {
			return 0, err
		}
	}
	req := &ctlRequest{
		kind:     ctlMoveOut,
		buckets:  buckets,
		dest:     e.parts[to],
		perRow:   perRow,
		overhead: overhead,
		rollback: rollback,
		done:     make(chan moveResult, 1),
	}
	src := e.parts[from]
	// Control requests ride the priority lane so a saturated data backlog
	// cannot starve the migration that would relieve it.
	select {
	case src.ctlQueue() <- request{ctl: req}:
	case <-src.stop:
		return 0, ErrStopped
	}
	res := <-req.done
	return res.rows, res.err
}

// OwnerOf returns the partition currently owning a bucket.
func (e *Engine) OwnerOf(bucket int) int { return e.ownerOf(bucket) }

// Plan returns a snapshot of the bucket plan: the owning partition of every
// bucket, indexed by bucket id. It is the canonical fingerprint of the
// cluster's data placement, used by the chaos suite to assert byte-identical
// outcomes across runs and exact restoration after an aborted migration.
func (e *Engine) Plan() []int32 {
	plan := *e.plan.Load()
	out := make([]int32, len(plan))
	copy(out, plan)
	return out
}

// BucketAccesses aggregates the per-partition access-counter blocks into one
// per-bucket snapshot of the transactions routed since the last reset; reset
// clears the counters so the next window starts fresh. It is the monitoring
// signal for skew-aware rebalancing. Counters are sharded per partition
// (each executor writes only its own cache-line-padded block), so the hot
// path never contends on a shared slice; aggregation happens lazily here.
func (e *Engine) BucketAccesses(reset bool) []int64 {
	out := make([]int64, e.cfg.Buckets)
	for _, p := range e.parts {
		for b := range p.accesses {
			if reset {
				out[b] += atomic.SwapInt64(&p.accesses[b], 0)
			} else {
				out[b] += atomic.LoadInt64(&p.accesses[b])
			}
		}
	}
	return out
}

// OwnedBuckets lists the buckets currently owned by a partition.
func (e *Engine) OwnedBuckets(part int) []int {
	plan := *e.plan.Load()
	var out []int
	for b, p := range plan {
		if int(p) == part {
			out = append(out, b)
		}
	}
	return out
}

// MachineOfPartition returns the machine hosting a partition.
func (e *Engine) MachineOfPartition(part int) int {
	return part / e.cfg.PartitionsPerMachine
}

// PartitionsOfMachine returns the partition ids hosted on machine m.
func (e *Engine) PartitionsOfMachine(m int) []int {
	out := make([]int, e.cfg.PartitionsPerMachine)
	for i := range out {
		out[i] = m*e.cfg.PartitionsPerMachine + i
	}
	return out
}

// SetActiveMachines records the active cluster size (used by controllers
// and the recorder timeline; executors always run, idle when unused).
func (e *Engine) SetActiveMachines(n int) error {
	if n < 1 || n > e.cfg.MaxMachines {
		return fmt.Errorf("store: active machines %d out of [1, %d]", n, e.cfg.MaxMachines)
	}
	e.activeMachines.Store(int32(n))
	if h := e.planLog.Load(); h != nil && h.l != nil {
		// The plan mutex orders this record against ownership flips.
		e.planMu.Lock()
		h.l.LogPlan(*e.plan.Load(), n)
		e.planMu.Unlock()
	}
	if r := e.recorder.Load(); r != nil {
		r.RecordMachines(time.Now(), n)
	}
	return nil
}

// ActiveMachines returns the current active cluster size.
func (e *Engine) ActiveMachines() int { return int(e.activeMachines.Load()) }

// Counters returns the engine's cumulative transaction counts.
func (e *Engine) Counters() Counters {
	return Counters{
		Submitted:        e.submitted.Load(),
		Completed:        e.completed.Load(),
		Errored:          e.errored.Load(),
		Forwarded:        e.forwarded.Load(),
		Rejected:         e.rejected.Load(),
		Shed:             e.shed.Load(),
		DeadlineExceeded: e.deadlineExceeded.Load(),
	}
}

// QueueSojourn returns one partition's current estimated queueing delay: the
// executor-maintained EWMA of request sojourn time. It is zero unless the
// overload plane is armed (Config.Overload).
func (e *Engine) QueueSojourn(part int) time.Duration {
	if part < 0 || part >= len(e.parts) {
		return 0
	}
	return time.Duration(e.parts[part].sojournEWMA.Load())
}

// MaxQueueSojourn returns the largest estimated queueing delay across all
// partitions — the cluster's worst-case backlog signal, used by the
// decision loop to size overload reports to controllers.
func (e *Engine) MaxQueueSojourn() time.Duration {
	var max int64
	for _, p := range e.parts {
		if v := p.sojournEWMA.Load(); v > max {
			max = v
		}
	}
	return time.Duration(max)
}

// PartitionRows returns the current row count of one partition. It is an
// estimate while transactions are in flight.
func (e *Engine) PartitionRows(part int) int {
	if part < 0 || part >= len(e.parts) {
		return 0
	}
	return int(atomic.LoadInt64(&e.parts[part].rowsAtomic))
}

// TotalRows returns the number of rows across all partitions. It is an
// estimate while transactions are in flight.
func (e *Engine) TotalRows() int {
	// Row counts are maintained by executor goroutines; snapshotting them
	// via a fence request would be heavyweight, so sum the per-partition
	// counters (races only smear in-flight increments).
	total := 0
	for _, p := range e.parts {
		total += int(atomic.LoadInt64(&p.rowsAtomic))
	}
	return total
}
