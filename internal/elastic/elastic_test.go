package elastic

import (
	"testing"

	"pstore/internal/migration"
	"pstore/internal/predictor"
)

func model() migration.Model {
	return migration.Model{Q: 285, QMax: 350, D: 15, P: 6}
}

func TestStaticNeverMoves(t *testing.T) {
	var s Static
	for i := 0; i < 10; i++ {
		d, err := s.Tick(4, false, float64(i*1000))
		if err != nil || d != nil {
			t.Fatalf("static decided %v, %v", d, err)
		}
	}
}

func TestSimpleSchedule(t *testing.T) {
	s := &Simple{SlotsPerDay: 24, MorningSlot: 8, NightSlot: 20, DayMachines: 6, NightMachines: 2}
	var targets []int
	for i := 0; i < 48; i++ {
		d, err := s.Tick(currentOf(targets, 2), false, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			targets = append(targets, d.Target)
		}
	}
	// Two days: morning up, night down, twice.
	want := []int{6, 2, 6, 2}
	if len(targets) != len(want) {
		t.Fatalf("decisions = %v, want %v", targets, want)
	}
	for i := range want {
		if targets[i] != want[i] {
			t.Fatalf("decisions = %v, want %v", targets, want)
		}
	}
}

// currentOf returns the machine count implied by previously executed
// decisions (instant moves for this unit test).
func currentOf(targets []int, initial int) int {
	if len(targets) == 0 {
		return initial
	}
	return targets[len(targets)-1]
}

func TestSimpleValidation(t *testing.T) {
	bad := &Simple{SlotsPerDay: 0}
	if _, err := bad.Tick(1, false, 0); err == nil {
		t.Error("invalid Simple config accepted")
	}
}

func TestSimpleHoldsDuringReconfig(t *testing.T) {
	s := &Simple{SlotsPerDay: 4, MorningSlot: 1, NightSlot: 3, DayMachines: 5, NightMachines: 1}
	s.tick = 1 // inside the day window
	if d, _ := s.Tick(1, true, 0); d != nil {
		t.Error("Simple decided during reconfiguration")
	}
}

func TestReactiveScaleOutOnOverload(t *testing.T) {
	r := &Reactive{Model: model()}
	// 2 machines, load beyond 1.05*QMax*2 = 735.
	if d, err := r.Tick(2, false, 700); err != nil || d != nil {
		t.Fatalf("decision below the reactive threshold: %v, %v", d, err)
	}
	// Overload must persist for ScaleOutConfirm cycles before the reactive
	// controller notices (E-Store's detection lag).
	for i := 0; i < 2; i++ {
		if d, err := r.Tick(2, false, 950); err != nil || d != nil {
			t.Fatalf("reacted before the overload persisted (cycle %d): %v, %v", i, d, err)
		}
	}
	d, err := r.Tick(2, false, 950)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("no scale-out on sustained overload")
	}
	// target = ceil(950*1.1/285) = 4.
	if d.Target != 4 {
		t.Errorf("target = %d, want 4", d.Target)
	}
}

func TestReactiveScaleInNeedsStreak(t *testing.T) {
	r := &Reactive{Model: model(), ScaleInConfirm: 3}
	for i := 0; i < 2; i++ {
		if d, _ := r.Tick(4, false, 100); d != nil {
			t.Fatalf("scaled in after only %d low intervals", i+1)
		}
	}
	d, err := r.Tick(4, false, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.Target >= 4 {
		t.Fatalf("expected scale-in decision, got %v", d)
	}
	// A busy interval resets the streak.
	r2 := &Reactive{Model: model(), ScaleInConfirm: 2}
	if d, _ := r2.Tick(4, false, 100); d != nil {
		t.Fatal("premature scale-in")
	}
	if d, _ := r2.Tick(4, false, 900); d != nil {
		t.Fatal("unexpected decision at normal load")
	}
	if d, _ := r2.Tick(4, false, 100); d != nil {
		t.Fatal("streak should have been reset")
	}
}

func TestReactiveRespectsMaxMachines(t *testing.T) {
	r := &Reactive{Model: model(), MaxMachines: 3}
	d, err := r.Tick(3, false, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Errorf("reactive exceeded MaxMachines: %+v", d)
	}
}

func TestReactiveInvalidModel(t *testing.T) {
	r := &Reactive{Model: migration.Model{}}
	if _, err := r.Tick(1, false, 10); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestPredictiveValidation(t *testing.T) {
	p := &Predictive{Model: model(), Horizon: 10}
	if _, err := p.Tick(1, false, 10); err == nil {
		t.Error("missing predictor accepted")
	}
	p = &Predictive{Model: model(), Horizon: 1, Predictor: predictor.NewOnline(predictor.NewOracle([]float64{1}), 0, 0)}
	if _, err := p.Tick(1, false, 10); err == nil {
		t.Error("horizon 1 accepted")
	}
}

func TestPredictiveScaleInConfirmation(t *testing.T) {
	// Constant low load on 2 machines: the planner will call for 2 -> 1,
	// but only after ScaleInConfirm cycles may a decision be emitted.
	trace := make([]float64, 200)
	for i := range trace {
		trace[i] = 100
	}
	o := predictor.NewOnline(predictor.NewOracle(trace), 0, 0)
	if err := o.ObserveAll(nil); err != nil {
		t.Fatal(err)
	}
	p := &Predictive{
		Model:          model(),
		Predictor:      o,
		Horizon:        10,
		ScaleInConfirm: 3,
	}
	decisions := 0
	for i := 0; i < 3; i++ {
		d, err := p.Tick(2, false, trace[i])
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			decisions++
			if i < 2 {
				t.Fatalf("scale-in decided on cycle %d, before confirmation", i)
			}
			if d.Target != 1 {
				t.Errorf("target = %d, want 1", d.Target)
			}
		}
	}
	if decisions != 1 {
		t.Errorf("decisions = %d, want exactly 1 after confirmation", decisions)
	}
}

func TestPredictiveScaleOutAheadOfRise(t *testing.T) {
	// Load is flat then doubles. With an oracle predictor the controller
	// must start the scale-out before the rise arrives.
	trace := make([]float64, 60)
	for i := range trace {
		if i < 30 {
			trace[i] = 200
		} else {
			trace[i] = 520
		}
	}
	o := predictor.NewOnline(predictor.NewOracle(trace), 0, 0)
	if err := o.ObserveAll(nil); err != nil {
		t.Fatal(err)
	}
	p := &Predictive{
		Model:     model(),
		Predictor: o,
		Horizon:   20,
		Inflation: 0,
	}
	decidedAt := -1
	for i := 0; i < 30; i++ {
		d, err := p.Tick(1, false, trace[i])
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			decidedAt = i
			if d.Target != 2 {
				t.Errorf("target = %d, want 2", d.Target)
			}
			break
		}
	}
	if decidedAt == -1 {
		t.Fatal("controller never scaled out")
	}
	if decidedAt >= 30 {
		t.Errorf("scale-out at %d, after the rise", decidedAt)
	}
	// Not absurdly early either: T(1,2) = ceil(15/6 * 0.5) = 2 intervals,
	// so the decision should come within the horizon of the rise.
	if decidedAt < 30-20 {
		t.Errorf("scale-out at %d, before the rise was even visible", decidedAt)
	}
}

func TestPredictiveEmergencyOnSpike(t *testing.T) {
	// A spike the planner cannot provision for in time must trigger the
	// emergency path with the configured rate policy: the load jumps to
	// ten machines' worth one interval from now, but any move from one
	// machine needs several intervals and its effective capacity during
	// migration is far below the spike.
	trace := make([]float64, 40)
	for i := range trace {
		if i < 1 {
			trace[i] = 200
		} else {
			trace[i] = 2600 // needs 10 machines immediately
		}
	}
	for _, policy := range []SpikePolicy{SpikeRegularRate, SpikeFastRate} {
		o := predictor.NewOnline(predictor.NewOracle(trace), 0, 0)
		if err := o.ObserveAll(nil); err != nil {
			t.Fatal(err)
		}
		p := &Predictive{
			Model:     model(),
			Predictor: o,
			Horizon:   8,
			OnSpike:   policy,
		}
		var got *Decision
		for i := 0; i < 10 && got == nil; i++ {
			d, err := p.Tick(1, false, trace[i])
			if err != nil {
				t.Fatal(err)
			}
			got = d
		}
		if got == nil {
			t.Fatalf("policy %v: no emergency decision", policy)
		}
		if !got.Emergency {
			t.Errorf("policy %v: decision not marked emergency", policy)
		}
		wantRate := 1.0
		if policy == SpikeFastRate {
			wantRate = 8
		}
		if got.RateFactor != wantRate {
			t.Errorf("policy %v: rate = %v, want %v", policy, got.RateFactor, wantRate)
		}
		if got.Target != 10 {
			t.Errorf("policy %v: target = %d, want 10", policy, got.Target)
		}
	}
}

func TestPredictiveHoldsDuringReconfig(t *testing.T) {
	trace := make([]float64, 50)
	o := predictor.NewOnline(predictor.NewOracle(trace), 0, 0)
	if err := o.ObserveAll(nil); err != nil {
		t.Fatal(err)
	}
	p := &Predictive{Model: model(), Predictor: o, Horizon: 10}
	d, err := p.Tick(2, true, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Error("predictive decided while reconfiguring")
	}
}

func TestManualSchedule(t *testing.T) {
	m := &Manual{Schedule: map[int]int{2: 6, 5: 2}}
	var got []int
	for i := 0; i < 8; i++ {
		cur := 3
		if len(got) > 0 {
			cur = got[len(got)-1]
		}
		d, err := m.Tick(cur, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			got = append(got, d.Target)
		}
	}
	want := []int{6, 2}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("manual decisions = %v, want %v", got, want)
	}
}

func TestManualDelaysWhileReconfiguring(t *testing.T) {
	m := &Manual{Schedule: map[int]int{0: 5}}
	if d, err := m.Tick(2, true, 0); err != nil || d != nil {
		t.Fatalf("fired during reconfiguration: %v, %v", d, err)
	}
	d, err := m.Tick(2, false, 0)
	if err != nil || d == nil || d.Target != 5 {
		t.Fatalf("delayed move did not fire: %v, %v", d, err)
	}
}

func TestManualValidatesSchedule(t *testing.T) {
	m := &Manual{Schedule: map[int]int{-1: 3}}
	if _, err := m.Tick(1, false, 0); err == nil {
		t.Error("negative schedule interval accepted")
	}
	m2 := &Manual{Schedule: map[int]int{0: 0}}
	if _, err := m2.Tick(1, false, 0); err == nil {
		t.Error("zero machine target accepted")
	}
}

func TestManualLayersOverInner(t *testing.T) {
	// Inner reactive controller handles ordinary ticks; the manual
	// promotion fires exactly at its scheduled interval.
	inner := &Reactive{Model: model()}
	m := &Manual{Schedule: map[int]int{3: 8}, Inner: inner}
	if m.Name() != "Manual+Reactive" {
		t.Errorf("Name = %q", m.Name())
	}
	for i := 0; i < 3; i++ {
		if d, err := m.Tick(2, false, 100); err != nil || d != nil {
			t.Fatalf("tick %d: unexpected decision %v, %v", i, d, err)
		}
	}
	d, err := m.Tick(2, false, 100)
	if err != nil || d == nil || d.Target != 8 {
		t.Fatalf("scheduled promotion did not fire: %v, %v", d, err)
	}
}
