package elastic

import (
	"errors"
	"math"
	"testing"

	"pstore/internal/migration"
	"pstore/internal/predictor"
)

// conformanceLoad is the shared replay: a diurnal wave with a flash spike
// steep enough to push Predictive into its emergency path and Reactive past
// its thresholds.
func conformanceLoad(i int) float64 {
	day := 1 + 0.9*math.Sin(2*math.Pi*float64(i)/96)
	v := 250 * day
	if i >= 300 && i < 340 { // unforecastable flash crowd
		v *= 3.5
	}
	return v
}

// conformanceControllers builds a fresh instance of every Controller
// implementation, shared by the conformance replays.
func conformanceControllers(t *testing.T, m migration.Model, maxMachines, steps int, load func(int) float64) map[string]func() Controller {
	t.Helper()
	return map[string]func() Controller{
		"static": func() Controller { return Static{} },
		"simple": func() Controller {
			return &Simple{SlotsPerDay: 96, MorningSlot: 32, NightSlot: 80, DayMachines: 6, NightMachines: 2}
		},
		"reactive": func() Controller {
			return &Reactive{Model: m, MaxMachines: maxMachines}
		},
		"predictive": func() Controller {
			trace := make([]float64, steps+64)
			for i := range trace {
				trace[i] = load(i) // oracle of the diurnal part incl. spike
			}
			online := predictor.NewOnline(predictor.NewOracle(trace), 0, 0)
			if err := online.ObserveAll(nil); err != nil {
				t.Fatal(err)
			}
			return &Predictive{
				Model: m, Predictor: online,
				Horizon: 12, Inflation: 0.15, ScaleInConfirm: 3,
				MaxMachines: maxMachines, OnSpike: SpikeFastRate,
			}
		},
		"predictive-surprised": func() Controller {
			// A predictor that never sees the spike coming, to force the
			// emergency path: it forecasts the flat diurnal base only.
			trace := make([]float64, steps+64)
			for i := range trace {
				trace[i] = 250
			}
			online := predictor.NewOnline(predictor.NewOracle(trace), 0, 0)
			if err := online.ObserveAll(nil); err != nil {
				t.Fatal(err)
			}
			return &Predictive{
				Model: m, Predictor: online,
				Horizon: 12, Inflation: 0.15, ScaleInConfirm: 3,
				MaxMachines: maxMachines, OnSpike: SpikeRegularRate,
			}
		},
		"manual": func() Controller {
			return &Manual{
				Schedule: map[int]int{10: 6, 200: 2, 310: maxMachines},
				Inner:    &Reactive{Model: m, MaxMachines: maxMachines},
			}
		},
	}
}

// TestControllerConformance runs every Controller implementation through
// the same varied load replay and asserts the documented contract:
//
//  1. Tick never returns a Decision while reconfiguring is true.
//  2. Every Decision's Target is >= 1 and <= the configured maximum.
//
// Reconfiguring ticks interleave the way the cluster runtime does: a
// decision keeps the cluster "reconfiguring" for the following ticks while
// the move drains.
func TestControllerConformance(t *testing.T) {
	const (
		maxMachines = 8
		steps       = 600
		moveTicks   = 3 // ticks a simulated move stays in flight
	)
	m := migration.Model{Q: 100, QMax: 130, D: 4, P: 2}
	load := conformanceLoad

	for name, fresh := range conformanceControllers(t, m, maxMachines, steps, load) {
		t.Run(name, func(t *testing.T) {
			ctrl := fresh()
			machines := 2
			inFlight := 0 // remaining ticks of a simulated move
			decisions := 0
			for i := 0; i < steps; i++ {
				reconfiguring := inFlight > 0
				dec, err := ctrl.Tick(machines, reconfiguring, load(i))
				if err != nil {
					t.Fatalf("tick %d: %v", i, err)
				}
				if dec == nil {
					if inFlight > 0 {
						inFlight--
						if inFlight == 0 {
							// The move lands; nothing else to do — target
							// was applied when the decision was made.
						}
					}
					continue
				}
				if reconfiguring {
					t.Fatalf("tick %d: decision %+v returned while reconfiguring", i, dec)
				}
				decisions++
				if dec.Target < 1 {
					t.Fatalf("tick %d: decision target %d below 1", i, dec.Target)
				}
				if dec.Target > maxMachines {
					t.Fatalf("tick %d: decision target %d above max %d", i, dec.Target, maxMachines)
				}
				if dec.RateFactor < 0 {
					t.Fatalf("tick %d: negative rate factor %v", i, dec.RateFactor)
				}
				machines = dec.Target
				inFlight = moveTicks
			}
			// Every non-static strategy must actually have exercised the
			// contract; a replay with zero decisions proves nothing.
			if name != "static" && decisions == 0 {
				t.Fatalf("%s made no decisions over %d steps", name, steps)
			}
		})
	}
}

// TestControllerConformanceUnderMoveFailures is the fault axis of the
// conformance suite: the same replay, but every other move the controller
// starts fails and rolls back — the machine count stays where it was, and
// controllers that implement MoveObserver are told, exactly the way the
// cluster runtime delivers outcomes. The contract under faults:
//
//  1. Tick never errors and never decides while reconfiguring, no matter how
//     many moves die.
//  2. Targets stay within [1, max] — failure handling must not panic-scale.
//  3. Every non-static controller keeps emitting decisions after failures
//     (a controller that wedges after its first dead move fails the test,
//     since the replay's spike forces later scale-outs).
func TestControllerConformanceUnderMoveFailures(t *testing.T) {
	const (
		maxMachines = 8
		steps       = 600
		moveTicks   = 3
	)
	m := migration.Model{Q: 100, QMax: 130, D: 4, P: 2}
	load := conformanceLoad

	for name, fresh := range conformanceControllers(t, m, maxMachines, steps, load) {
		t.Run(name, func(t *testing.T) {
			ctrl := fresh()
			machines := 2
			inFlight := 0
			pending := 0 // target of the in-flight move
			moveSeq := 0
			decisions, failures, afterFailure := 0, 0, 0
			for i := 0; i < steps; i++ {
				reconfiguring := inFlight > 0
				dec, err := ctrl.Tick(machines, reconfiguring, load(i))
				if err != nil {
					t.Fatalf("tick %d: %v", i, err)
				}
				if dec != nil {
					if reconfiguring {
						t.Fatalf("tick %d: decision %+v returned while reconfiguring", i, dec)
					}
					if dec.Target < 1 || dec.Target > maxMachines {
						t.Fatalf("tick %d: decision target %d outside [1, %d]", i, dec.Target, maxMachines)
					}
					if dec.RateFactor < 0 {
						t.Fatalf("tick %d: negative rate factor %v", i, dec.RateFactor)
					}
					decisions++
					if failures > 0 {
						afterFailure++
					}
					moveSeq++
					pending = dec.Target
					inFlight = moveTicks
					continue
				}
				if inFlight > 0 {
					inFlight--
					if inFlight == 0 {
						if moveSeq%2 == 1 {
							// The move aborts and rolls back: machines stays.
							failures++
							if obs, ok := ctrl.(MoveObserver); ok {
								obs.MoveResult(pending, errors.New("elastic_test: injected move failure"))
							}
						} else {
							machines = pending
							if obs, ok := ctrl.(MoveObserver); ok {
								obs.MoveResult(pending, nil)
							}
						}
					}
				}
			}
			if name == "static" {
				return
			}
			if decisions == 0 {
				t.Fatalf("%s made no decisions over %d faulted steps", name, steps)
			}
			if failures == 0 {
				t.Fatalf("%s never had a move fail — fault axis not exercised", name)
			}
			if afterFailure == 0 {
				t.Fatalf("%s wedged after its first failed move: no decisions followed %d failures", name, failures)
			}
		})
	}
}

// TestControllerConformanceUnderMachineCrash is the capacity-loss axis of
// the conformance suite: the same replay, but a machine crashes mid-window —
// during a move, and with the flash crowd arriving while the machine is
// still down. The harness mirrors the cluster runtime's contract: Tick sees
// the *effective* cluster size (one less while down), FailureObserver
// controllers get MachineFailed/MachineRecovered on the tick goroutine, and
// the in-flight move at crash time aborts with a rollback. The contract:
//
//  1. Tick never errors and never decides while reconfiguring, before,
//     during or after the crash — no controller may deadlock or wedge.
//  2. Targets stay within [1, max] at every point.
//  3. Every non-static controller keeps emitting decisions after the crash
//     (the spike hits during the outage, so scale-outs are mandatory).
func TestControllerConformanceUnderMachineCrash(t *testing.T) {
	const (
		maxMachines = 8
		steps       = 600
		moveTicks   = 3
		crashTick   = 290 // while the diurnal wave is high, just before the spike
		recoverTick = 350 // the flash crowd (300-340) lands entirely in the outage
	)
	m := migration.Model{Q: 100, QMax: 130, D: 4, P: 2}
	load := conformanceLoad

	for name, fresh := range conformanceControllers(t, m, maxMachines, steps, load) {
		t.Run(name, func(t *testing.T) {
			ctrl := fresh()
			machines := 2 // effective (serving) machines, as the runtime reports
			inFlight := 0
			pending := 0
			down := false
			decisions, afterCrash := 0, 0
			for i := 0; i < steps; i++ {
				switch i {
				case crashTick:
					down = true
					if machines > 1 {
						machines--
					}
					if inFlight > 0 {
						// The move touching the dead machine aborts and
						// rolls back, exactly as the cluster delivers it.
						inFlight = 0
						if obs, ok := ctrl.(MoveObserver); ok {
							obs.MoveResult(pending, errors.New("elastic_test: machine crashed mid-move"))
						}
					}
					if obs, ok := ctrl.(FailureObserver); ok {
						obs.MachineFailed(machines)
					}
				case recoverTick:
					down = false
					if machines < maxMachines {
						machines++
					}
					if obs, ok := ctrl.(FailureObserver); ok {
						obs.MachineRecovered(machines - 1)
					}
				}
				reconfiguring := inFlight > 0
				dec, err := ctrl.Tick(machines, reconfiguring, load(i))
				if err != nil {
					t.Fatalf("tick %d (down=%v): %v", i, down, err)
				}
				if dec != nil {
					if reconfiguring {
						t.Fatalf("tick %d: decision %+v returned while reconfiguring", i, dec)
					}
					if dec.Target < 1 || dec.Target > maxMachines {
						t.Fatalf("tick %d: decision target %d outside [1, %d]", i, dec.Target, maxMachines)
					}
					if dec.RateFactor < 0 {
						t.Fatalf("tick %d: negative rate factor %v", i, dec.RateFactor)
					}
					decisions++
					if i > crashTick {
						afterCrash++
					}
					pending = dec.Target
					inFlight = moveTicks
					continue
				}
				if inFlight > 0 {
					inFlight--
					if inFlight == 0 {
						machines = pending
						if obs, ok := ctrl.(MoveObserver); ok {
							obs.MoveResult(pending, nil)
						}
					}
				}
			}
			if name == "static" {
				return
			}
			if decisions == 0 {
				t.Fatalf("%s made no decisions over %d crashed steps", name, steps)
			}
			if afterCrash == 0 {
				t.Fatalf("%s wedged after the machine crash: no decisions followed tick %d", name, crashTick)
			}
		})
	}
}

// TestControllerConformanceAlwaysReconfiguring pins the first contract rule
// in isolation: a controller that is told a move is running on every single
// tick must never decide, no matter what the load does.
func TestControllerConformanceAlwaysReconfiguring(t *testing.T) {
	m := migration.Model{Q: 100, QMax: 130, D: 4, P: 2}
	online := predictor.NewOnline(predictor.NewOracle(make([]float64, 256)), 0, 0)
	if err := online.ObserveAll(nil); err != nil {
		t.Fatal(err)
	}
	controllers := map[string]Controller{
		"static":     Static{},
		"simple":     &Simple{SlotsPerDay: 24, MorningSlot: 8, NightSlot: 20, DayMachines: 6, NightMachines: 2},
		"reactive":   &Reactive{Model: m, MaxMachines: 8},
		"predictive": &Predictive{Model: m, Predictor: online, Horizon: 12, MaxMachines: 8},
		"manual":     &Manual{Schedule: map[int]int{0: 5}},
	}
	for name, ctrl := range controllers {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 50; i++ {
				dec, err := ctrl.Tick(3, true, float64(1000*(i%7)))
				if err != nil {
					t.Fatalf("tick %d: %v", i, err)
				}
				if dec != nil {
					t.Fatalf("tick %d: decision %+v while reconfiguring", i, dec)
				}
			}
		})
	}
}
