package elastic

import (
	"fmt"

	"pstore/internal/migration"
)

// Reactive is an E-Store-like reactive provisioner (Section 2, Figure 9c):
// it continuously monitors the per-machine load and reconfigures only after
// a threshold is breached — which means scale-outs begin exactly when the
// system is already near peak capacity.
type Reactive struct {
	// Model supplies per-machine capacity figures.
	Model migration.Model
	// HighFraction of QMax at which a scale-out triggers (default 1.3,
	// slightly above the saturation throughput: an E-Store-like reactive
	// system triggers on pinned CPU utilization, which only happens once
	// the machine is genuinely overloaded and latency is already past the
	// SLO).
	HighFraction float64
	// LowFraction of Q below which scale-in is considered (default 0.5).
	LowFraction float64
	// ScaleOutConfirm is how many consecutive overloaded intervals must
	// pass before a scale-out starts (default 2): E-Store first detects a
	// sustained imbalance, then runs detailed monitoring and planning
	// before migration begins, so reaction lags the overload.
	ScaleOutConfirm int
	// ScaleInConfirm is how many consecutive low-load intervals must pass
	// before scaling in (hysteresis; default 5).
	ScaleInConfirm int
	// Headroom multiplies the observed load when sizing the new cluster,
	// creating the capacity "buffer" the paper varies in Figure 12
	// (default 1.1: a reactive system sizes for the load it sees, not the
	// load to come, so it re-triggers repeatedly on a rising ramp).
	Headroom float64
	// MaxStep caps how many machines one scale-out decision may add
	// (default 2): E-Store relocates modest sets of hot tuples per
	// reconfiguration rather than re-provisioning the whole cluster, so a
	// steep ramp takes several reactions to catch up with.
	MaxStep int
	// MaxMachines caps the cluster size (0 = unlimited).
	MaxMachines int

	lowStreak  int
	highStreak int
	// overloadPending is set by Overloaded and consumed by the next Tick:
	// refused work is direct evidence the cluster is past capacity, so the
	// controller scales out immediately instead of waiting for the
	// per-machine load threshold and its confirmation streak.
	overloadPending bool
}

// Name implements Controller.
func (r *Reactive) Name() string { return "Reactive" }

// Overloaded implements OverloadObserver: any refused work arms an immediate
// emergency scale-out on the next Tick. A reactive provisioner normally
// learns of overload from its load measurement — but throughput saturates at
// capacity, so the measurement stops rising exactly when the overload
// starts; the engine's backpressure signal has no such ceiling.
func (r *Reactive) Overloaded(sig OverloadSignal) {
	if sig.Refused() > 0 {
		r.overloadPending = true
	}
}

func (r *Reactive) defaults() {
	if r.HighFraction == 0 {
		r.HighFraction = 1.3
	}
	if r.LowFraction == 0 {
		r.LowFraction = 0.5
	}
	if r.ScaleOutConfirm == 0 {
		r.ScaleOutConfirm = 3
	}
	if r.ScaleInConfirm == 0 {
		r.ScaleInConfirm = 5
	}
	if r.Headroom == 0 {
		r.Headroom = 1.1
	}
	if r.MaxStep == 0 {
		r.MaxStep = 2
	}
}

// Tick implements Controller.
func (r *Reactive) Tick(machines int, reconfiguring bool, load float64) (*Decision, error) {
	if err := r.Model.Validate(); err != nil {
		return nil, fmt.Errorf("elastic: reactive: %w", err)
	}
	r.defaults()
	if reconfiguring {
		r.lowStreak = 0
		r.highStreak = 0
		r.overloadPending = false
		return nil, nil
	}
	// Backpressure overrides threshold detection: the engine refusing work
	// is proof of overload, so skip the confirmation streak and scale out at
	// the emergency rate.
	if r.overloadPending {
		r.overloadPending = false
		r.lowStreak = 0
		r.highStreak = 0
		target := max(r.Model.MachinesFor(load*r.Headroom), machines+1)
		if target > machines+r.MaxStep {
			target = machines + r.MaxStep
		}
		if r.MaxMachines > 0 && target > r.MaxMachines {
			target = r.MaxMachines
		}
		if target > machines {
			return &Decision{Target: target, RateFactor: 8, Emergency: true}, nil
		}
		return nil, nil
	}
	perMachine := load / float64(machines)

	// Overload: react once the overload has persisted — too late to avoid
	// migrating at peak, but that is the nature of the strategy.
	if perMachine > r.HighFraction*r.Model.QMax {
		r.lowStreak = 0
		r.highStreak++
		if r.highStreak < r.ScaleOutConfirm {
			return nil, nil
		}
		target := r.Model.MachinesFor(load * r.Headroom)
		if target > machines+r.MaxStep {
			target = machines + r.MaxStep
		}
		if r.MaxMachines > 0 && target > r.MaxMachines {
			target = r.MaxMachines
		}
		if target > machines {
			r.highStreak = 0
			return &Decision{Target: target, RateFactor: 1}, nil
		}
		return nil, nil
	}
	r.highStreak = 0

	// Underload: require a sustained streak before shrinking.
	if perMachine < r.LowFraction*r.Model.Q && machines > 1 {
		r.lowStreak++
		if r.lowStreak >= r.ScaleInConfirm {
			r.lowStreak = 0
			target := max(r.Model.MachinesFor(load*r.Headroom), 1)
			if target < machines {
				return &Decision{Target: target, RateFactor: 1}, nil
			}
		}
		return nil, nil
	}
	r.lowStreak = 0
	return nil, nil
}
