package elastic

import (
	"errors"
	"fmt"

	"pstore/internal/migration"
	"pstore/internal/planner"
	"pstore/internal/predictor"
)

// SpikePolicy selects how P-Store reacts when the planner finds no feasible
// plan — an unpredicted flash crowd (Section 4.3.1).
type SpikePolicy int

const (
	// SpikeRegularRate keeps migrating at the non-disruptive rate R and
	// accepts a capacity shortfall for longer (the paper's default).
	SpikeRegularRate SpikePolicy = iota
	// SpikeFastRate migrates at rate R x 8, accepting migration-induced
	// latency to reach the needed capacity sooner.
	SpikeFastRate
)

// Predictive is P-Store's Predictive Controller (Section 6): it feeds load
// measurements to the online predictor, asks the planner for the optimal
// series of moves over the forecast horizon, executes only the first move
// (receding horizon control), confirms scale-ins over several cycles, and
// falls back to reactive emergency scaling when no feasible plan exists.
type Predictive struct {
	// Model supplies capacity and migration figures; Model.D must be in
	// monitoring intervals.
	Model migration.Model
	// Predictor is the online load forecaster (SPAR by default, or an
	// Oracle for upper-bound studies).
	Predictor *predictor.Online
	// Horizon is how many intervals ahead to plan; it must cover at least
	// two reconfigurations (the paper uses tau >= 2D/P).
	Horizon int
	// Inflation is the fractional safety margin added to predictions (the
	// paper inflates by 15%).
	Inflation float64
	// ScaleInConfirm is how many consecutive planning cycles must call
	// for a scale-in before it executes (the paper uses 3).
	ScaleInConfirm int
	// MaxMachines caps the cluster (0 = no cap).
	MaxMachines int
	// OnSpike selects the emergency policy when planning is infeasible.
	OnSpike SpikePolicy
	// SmoothWindow is how many recent load observations are averaged into
	// the planner's current-interval load (default 3). On a compressed
	// substrate each monitoring cycle sees few arrivals, so the raw
	// per-cycle measurement is noisy; the paper's five-minute production
	// windows average millions of requests and need no smoothing.
	SmoothWindow int
	// FallbackCycles is how many monitoring cycles the controller hands
	// decisions to the reactive fallback after one of its moves fails
	// (default 8). A dead move means the plan the predictor optimized for
	// did not happen — the same epistemic state as a misprediction — so
	// the controller stops trusting the horizon and scales on what it can
	// see, at the paper's rate-R x 8 escape hatch, until the window ends.
	FallbackCycles int

	scaleInStreak  int
	lastPlan       *planner.Plan
	recentLoads    []float64
	fallbackLeft   int
	failedMoves    int
	fallback       *Reactive
	overloadStreak int
}

// Name implements Controller.
func (p *Predictive) Name() string { return "P-Store" }

// LastPlan exposes the most recent plan for instrumentation.
func (p *Predictive) LastPlan() *planner.Plan { return p.lastPlan }

// FailedMoves reports how many of this controller's moves have aborted.
func (p *Predictive) FailedMoves() int { return p.failedMoves }

// InFallback reports whether the controller is currently delegating to the
// reactive fallback because a move failed.
func (p *Predictive) InFallback() bool { return p.fallbackLeft > 0 }

// MoveResult implements MoveObserver: a failed move is treated as a
// misprediction. The plan is discarded and the next FallbackCycles ticks
// re-plan reactively from observed load, with decisions flagged Emergency at
// the rate-R x 8 escape hatch so the executing world prioritizes capacity
// over migration smoothness.
func (p *Predictive) MoveResult(_ int, err error) {
	if err == nil {
		return
	}
	p.failedMoves++
	p.enterFallback()
}

// Overloaded implements OverloadObserver: sustained refused work is a
// misprediction made manifest — the planner guaranteed predicted load would
// fit effective capacity (Eq. 7), and the engine shedding load proves it did
// not. Two consecutive overloaded intervals (one could be a transient the
// CoDel controller absorbs) discard the horizon plan and enter the reactive
// fallback at the rate-R x 8 escape hatch, exactly as for a failed move.
func (p *Predictive) Overloaded(sig OverloadSignal) {
	if sig.Refused() == 0 {
		p.overloadStreak = 0
		return
	}
	if p.fallbackLeft > 0 {
		// Already scaling on observation; pass the backpressure through so
		// the fallback reacts even while its load measurement sits pinned at
		// the throughput ceiling.
		p.fallback.Overloaded(sig)
		return
	}
	p.overloadStreak++
	if p.overloadStreak < 2 {
		return
	}
	p.overloadStreak = 0
	p.enterFallback()
}

// MachineFailed implements FailureObserver: losing a machine is the same
// epistemic event as a failed move — the capacity trajectory the horizon
// plan assumed no longer exists — so the controller stops trusting the plan
// and scales on observation for a while.
func (p *Predictive) MachineFailed(int) { p.enterFallback() }

// MachineRecovered implements FailureObserver. Returning capacity needs no
// special action: the executing world reports effective capacity, so the
// next Tick simply plans from a larger cluster.
func (p *Predictive) MachineRecovered(int) {}

// enterFallback discards the horizon plan and hands the next FallbackCycles
// decisions to the reactive fallback at the rate-R x 8 escape hatch.
func (p *Predictive) enterFallback() {
	p.lastPlan = nil
	p.scaleInStreak = 0
	if p.FallbackCycles < 1 {
		p.FallbackCycles = 8
	}
	p.fallbackLeft = p.FallbackCycles
	if p.fallback == nil {
		// React on the first confirming tick: the failure already proved
		// the capacity need, so the usual detection lag would only deepen
		// the shortfall.
		p.fallback = &Reactive{
			Model:           p.Model,
			MaxMachines:     p.MaxMachines,
			ScaleOutConfirm: 1,
		}
	}
}

// Tick implements Controller.
func (p *Predictive) Tick(machines int, reconfiguring bool, load float64) (*Decision, error) {
	if p.Predictor == nil {
		return nil, errors.New("elastic: predictive controller has no predictor")
	}
	if p.Horizon < 2 {
		return nil, fmt.Errorf("elastic: horizon %d must be at least 2", p.Horizon)
	}
	if p.ScaleInConfirm < 1 {
		p.ScaleInConfirm = 3
	}
	if err := p.Predictor.Observe(load); err != nil {
		return nil, fmt.Errorf("elastic: observing load: %w", err)
	}
	if p.SmoothWindow < 1 {
		p.SmoothWindow = 3
	}
	p.recentLoads = append(p.recentLoads, load)
	if len(p.recentLoads) > p.SmoothWindow {
		p.recentLoads = p.recentLoads[len(p.recentLoads)-p.SmoothWindow:]
	}
	smoothed := 0.0
	for _, v := range p.recentLoads {
		smoothed += v
	}
	smoothed /= float64(len(p.recentLoads))
	// A genuine surge must not be averaged away: take the larger of the
	// smoothed level and the latest measurement discounted for noise.
	if burst := load * 0.85; burst > smoothed {
		smoothed = burst
	}
	// The paper's controller completes a move before planning the next.
	if reconfiguring {
		p.scaleInStreak = 0
		return nil, nil
	}
	// After a failed move, decide reactively for a while: the horizon plan
	// already diverged from reality, so scale on observation, urgently.
	if p.fallbackLeft > 0 {
		p.fallbackLeft--
		dec, err := p.fallback.Tick(machines, false, load)
		if err != nil {
			return nil, fmt.Errorf("elastic: reactive fallback: %w", err)
		}
		if dec != nil && dec.Target > machines {
			dec.Emergency = true
			dec.RateFactor = 8
		}
		return dec, nil
	}
	if !p.Predictor.Ready(p.Horizon) {
		return nil, nil
	}
	forecast, err := p.Predictor.Forecast(p.Horizon)
	if err != nil {
		return nil, fmt.Errorf("elastic: forecasting: %w", err)
	}
	forecast = predictor.Inflate(forecast, p.Inflation)
	// Plan from the present: L[0] is the load right now (the smoothed
	// measurement, also inflated so the first interval is consistent).
	l := make([]float64, 0, len(forecast)+1)
	l = append(l, smoothed*(1+p.Inflation))
	l = append(l, forecast...)
	// The current interval must be feasible for the DP's base case; if the
	// system is already over capacity, fall through to emergency handling.
	pl := planner.Planner{Model: p.Model, MaxMachines: p.MaxMachines}
	plan, err := pl.BestMoves(l, machines)
	if errors.Is(err, planner.ErrInfeasible) {
		return p.emergency(machines, l), nil
	}
	if err != nil {
		return nil, fmt.Errorf("elastic: planning: %w", err)
	}
	p.lastPlan = plan

	first, ok := plan.FirstReconfiguration()
	if !ok || first.Start > 0 {
		// Either nothing to do, or the optimal time to start is in the
		// future: replan next cycle (receding horizon).
		p.scaleInStreak = 0
		return nil, nil
	}
	if first.To < machines {
		// Skip dips: if the optimal plan returns to the current cluster
		// size (or larger) later in the horizon, the scale-in would be
		// undone almost immediately — prediction noise around a capacity
		// boundary, not a real decline. The paper's controller likewise
		// guards scale-ins far more conservatively than scale-outs.
		for _, mv := range plan.Moves[1:] {
			if mv.To >= machines {
				p.scaleInStreak = 0
				return nil, nil
			}
		}
		// Require ScaleInConfirm consecutive cycles agreeing before
		// releasing machines (Section 6).
		p.scaleInStreak++
		if p.scaleInStreak < p.ScaleInConfirm {
			return nil, nil
		}
		p.scaleInStreak = 0
		return &Decision{Target: first.To, RateFactor: 1}, nil
	}
	p.scaleInStreak = 0
	return &Decision{Target: first.To, RateFactor: 1}, nil
}

// emergency sizes an immediate scale-out for an unpredicted spike and
// applies the configured rate policy.
func (p *Predictive) emergency(machines int, l []float64) *Decision {
	peak := 0.0
	for _, v := range l {
		if v > peak {
			peak = v
		}
	}
	target := p.Model.MachinesFor(peak)
	if p.MaxMachines > 0 && target > p.MaxMachines {
		target = p.MaxMachines
	}
	if target <= machines {
		return nil
	}
	rate := 1.0
	if p.OnSpike == SpikeFastRate {
		rate = 8
	}
	return &Decision{Target: target, RateFactor: rate, Emergency: true}
}
