package elastic

import (
	"errors"
	"testing"

	"pstore/internal/migration"
	"pstore/internal/predictor"
)

// TestPredictiveFallbackAfterFailedMove pins the misprediction semantics of
// a dead move: the controller discards its plan, hands the next
// FallbackCycles ticks to an eager reactive policy, flags fallback
// scale-outs as emergencies at the rate-R x 8 escape hatch, and returns to
// predictive planning once the window drains.
func TestPredictiveFallbackAfterFailedMove(t *testing.T) {
	m := migration.Model{Q: 100, QMax: 130, D: 4, P: 2}
	trace := make([]float64, 256)
	for i := range trace {
		trace[i] = 150
	}
	online := predictor.NewOnline(predictor.NewOracle(trace), 0, 0)
	if err := online.ObserveAll(nil); err != nil {
		t.Fatal(err)
	}
	ctrl := &Predictive{
		Model: m, Predictor: online,
		Horizon: 12, MaxMachines: 8, FallbackCycles: 2,
	}

	// Steady state first: the flat forecast needs 2 machines, so nothing to
	// do at 2.
	if dec, err := ctrl.Tick(2, false, 150); err != nil || dec != nil {
		t.Fatalf("steady tick decided %+v, %v", dec, err)
	}
	if ctrl.InFallback() {
		t.Fatal("in fallback before any failure")
	}

	// A scale-out move dies.
	ctrl.MoveResult(4, errors.New("elastic_test: move aborted"))
	if !ctrl.InFallback() {
		t.Fatal("not in fallback after a failed move")
	}
	if got := ctrl.FailedMoves(); got != 1 {
		t.Fatalf("FailedMoves = %d, want 1", got)
	}
	if ctrl.LastPlan() != nil {
		t.Fatal("failed move did not discard the plan")
	}

	// Fallback tick 1 under heavy observed load: the reactive policy must
	// decide immediately (ScaleOutConfirm 1) and the decision must carry the
	// emergency rate override.
	dec, err := ctrl.Tick(2, false, 800)
	if err != nil {
		t.Fatal(err)
	}
	if dec == nil {
		t.Fatal("fallback tick under overload decided nothing")
	}
	if dec.Target != 4 { // MaxStep default 2 caps 2 -> 4
		t.Errorf("fallback target %d, want 4", dec.Target)
	}
	if !dec.Emergency || dec.RateFactor != 8 {
		t.Errorf("fallback scale-out %+v, want Emergency at rate 8", dec)
	}

	// Fallback tick 2 at calm load: no decision, and the window is now
	// drained.
	if dec, err := ctrl.Tick(4, false, 150); err != nil || dec != nil {
		t.Fatalf("draining fallback tick decided %+v, %v", dec, err)
	}
	if ctrl.InFallback() {
		t.Fatal("still in fallback after FallbackCycles ticks")
	}

	// Back to predictive planning: the flat 150 forecast on 4 machines plans
	// a scale-in, which shows up as a fresh plan (the decision itself waits
	// for ScaleInConfirm).
	if _, err := ctrl.Tick(4, false, 150); err != nil {
		t.Fatal(err)
	}
	if ctrl.LastPlan() == nil {
		t.Fatal("controller did not resume predictive planning after fallback")
	}

	// A successful move must not trigger fallback.
	ctrl.MoveResult(2, nil)
	if ctrl.InFallback() || ctrl.FailedMoves() != 1 {
		t.Fatalf("successful move counted as failure: fallback=%v failed=%d", ctrl.InFallback(), ctrl.FailedMoves())
	}
}
