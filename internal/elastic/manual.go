package elastic

import (
	"fmt"
	"sort"
)

// Manual implements the third arm of the paper's composite provisioning
// strategy (Section 1): operator-scheduled capacity changes for rare but
// known events — "special promotions for B2W". Moves fire at fixed
// intervals regardless of observed load and can be layered over another
// controller: at each tick the scheduled move wins if one is due, otherwise
// the inner controller (if any) decides.
type Manual struct {
	// Schedule maps interval index -> machine target. Entries fire once,
	// at the first tick at or after their interval.
	Schedule map[int]int
	// Inner optionally handles the ticks between scheduled moves (e.g. a
	// Predictive controller; the paper's composite strategy). Nil means
	// purely manual provisioning.
	Inner Controller

	tick    int
	pending []scheduledMove
	loaded  bool
}

type scheduledMove struct {
	at     int
	target int
}

// Name implements Controller.
func (m *Manual) Name() string {
	if m.Inner != nil {
		return "Manual+" + m.Inner.Name()
	}
	return "Manual"
}

// Tick implements Controller.
func (m *Manual) Tick(machines int, reconfiguring bool, load float64) (*Decision, error) {
	if !m.loaded {
		for at, target := range m.Schedule {
			if at < 0 || target < 1 {
				return nil, fmt.Errorf("elastic: manual schedule entry %d -> %d invalid", at, target)
			}
			m.pending = append(m.pending, scheduledMove{at: at, target: target})
		}
		sort.Slice(m.pending, func(i, j int) bool { return m.pending[i].at < m.pending[j].at })
		m.loaded = true
	}
	tick := m.tick
	m.tick++

	// Scheduled moves take precedence; they fire at the first opportunity
	// at or after their interval (a move in progress delays them).
	if len(m.pending) > 0 && m.pending[0].at <= tick {
		if reconfiguring {
			// Keep the inner controller's bookkeeping warm while waiting.
			if m.Inner != nil {
				if _, err := m.Inner.Tick(machines, reconfiguring, load); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
		target := m.pending[0].target
		m.pending = m.pending[1:]
		if m.Inner != nil {
			if _, err := m.Inner.Tick(machines, true, load); err != nil {
				return nil, err
			}
		}
		if target == machines {
			return nil, nil
		}
		return &Decision{Target: target, RateFactor: 1}, nil
	}
	if m.Inner != nil {
		return m.Inner.Tick(machines, reconfiguring, load)
	}
	return nil, nil
}
