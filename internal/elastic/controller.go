// Package elastic implements the provisioning controllers the paper
// evaluates against each other (Sections 6 and 8): P-Store's Predictive
// Controller (predictor → planner → scheduler with receding-horizon
// control), an E-Store-like reactive controller, static allocation, and the
// "Simple" time-of-day strategy of Figure 13.
//
// Controllers are pure decision components: once per monitoring interval
// they ingest the observed aggregate load and decide whether to start a
// reconfiguration now. The same controllers drive both the live storage
// engine (internal/squall executes their moves) and the long-horizon
// analytic simulator (internal/sim), exactly as the paper uses one strategy
// implementation for both benchmark and simulation studies.
package elastic

import (
	"fmt"
	"time"
)

// Decision asks the executing world to start a reconfiguration now.
type Decision struct {
	// Target is the machine count to move to.
	Target int
	// RateFactor accelerates the migration (the paper's "rate R x 8"
	// emergency mode); 1 is the normal non-disruptive rate R.
	RateFactor float64
	// Emergency marks a move issued because no feasible plan exists —
	// load is rising faster than the planner can provision for.
	Emergency bool
}

// Controller decides, once per monitoring interval, whether to reconfigure.
type Controller interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Tick ingests the load observed during the last interval given the
	// current cluster size and whether a migration is still running. A
	// non-nil Decision starts a move now; Tick is never expected to
	// return a Decision while reconfiguring.
	Tick(machines int, reconfiguring bool, load float64) (*Decision, error)
}

// MoveObserver is optionally implemented by controllers that want to learn
// the fate of the moves their decisions started. The executing world calls
// MoveResult on the same goroutine that calls Tick, never concurrently with
// it: a nil err means the move landed, a non-nil err means it aborted (and
// the cluster rolled back to the pre-move plan, so `machines` on the next
// Tick is unchanged).
type MoveObserver interface {
	MoveResult(target int, err error)
}

// FailureObserver is optionally implemented by controllers that want to
// learn about machine-level failures. The executing world calls both methods
// on the same goroutine that calls Tick, never concurrently with it. While a
// machine is down the controller's Tick sees the *effective* cluster size
// (live machines only), so these notifications carry the why, not the what:
// a controller that keeps horizon state can discard plans built on the
// pre-crash capacity.
type FailureObserver interface {
	// MachineFailed reports that a machine crashed and its capacity is gone
	// until recovery completes.
	MachineFailed(machine int)
	// MachineRecovered reports that a crashed machine finished recovery and
	// serves again.
	MachineRecovered(machine int)
}

// OverloadSignal summarizes one monitoring interval's server-side overload
// activity: work the engine refused (admission-control rejections, CoDel
// sheds, queue-deadline expiries) and the worst per-partition estimated
// queueing delay. A zero signal means the interval saw no overload.
type OverloadSignal struct {
	// Rejected, Shed and DeadlineExceeded are the interval's refused-work
	// counts, by mechanism.
	Rejected         int64
	Shed             int64
	DeadlineExceeded int64
	// QueueDelay is the worst partition's estimated queueing delay (the
	// executor-maintained sojourn EWMA) at the end of the interval.
	QueueDelay time.Duration
}

// Refused is the total work the engine refused during the interval.
func (s OverloadSignal) Refused() int64 {
	return s.Rejected + s.Shed + s.DeadlineExceeded
}

// OverloadObserver is optionally implemented by controllers that want the
// engine's backpressure signal. The executing world calls Overloaded once
// per monitoring interval — zero signal included — on the same goroutine
// that calls Tick, never concurrently with it, and before that interval's
// Tick. The signal matters because the load measurement alone cannot reveal
// overload promptly: throughput plateaus at capacity while queues grow, and
// the recorder's latency window confirms the damage only after the fact.
// Refused work is the leading indicator.
type OverloadObserver interface {
	Overloaded(sig OverloadSignal)
}

// Static never reconfigures: the paper's peak-provisioned (10 machines) and
// under-provisioned (4 machines) baselines of Figure 9a/9b.
type Static struct{}

// Name implements Controller.
func (Static) Name() string { return "Static" }

// Tick implements Controller.
func (Static) Tick(int, bool, float64) (*Decision, error) { return nil, nil }

// Simple is the time-of-day heuristic of Figure 13: scale up every morning,
// down every night, regardless of what the load actually does. It works
// until the first day that deviates from the pattern.
type Simple struct {
	// SlotsPerDay is the number of monitoring intervals per day.
	SlotsPerDay int
	// MorningSlot and NightSlot are the slot-of-day boundaries for the
	// daytime configuration.
	MorningSlot, NightSlot int
	// DayMachines and NightMachines are the two cluster sizes.
	DayMachines, NightMachines int

	tick int
}

// Name implements Controller.
func (s *Simple) Name() string { return "Simple" }

// Tick implements Controller.
func (s *Simple) Tick(machines int, reconfiguring bool, _ float64) (*Decision, error) {
	if s.SlotsPerDay < 1 || s.MorningSlot < 0 || s.NightSlot <= s.MorningSlot ||
		s.NightSlot > s.SlotsPerDay || s.DayMachines < 1 || s.NightMachines < 1 {
		return nil, fmt.Errorf("elastic: invalid Simple config %+v", *s)
	}
	slot := s.tick % s.SlotsPerDay
	s.tick++
	if reconfiguring {
		return nil, nil
	}
	want := s.NightMachines
	if slot >= s.MorningSlot && slot < s.NightSlot {
		want = s.DayMachines
	}
	if want != machines {
		return &Decision{Target: want, RateFactor: 1}, nil
	}
	return nil, nil
}
