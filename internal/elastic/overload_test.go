package elastic

import (
	"testing"
	"time"

	"pstore/internal/migration"
	"pstore/internal/predictor"
)

func overloadSig() OverloadSignal {
	return OverloadSignal{Rejected: 40, Shed: 12, DeadlineExceeded: 3, QueueDelay: 80 * time.Millisecond}
}

func TestOverloadSignalRefused(t *testing.T) {
	if got := (OverloadSignal{}).Refused(); got != 0 {
		t.Errorf("zero signal Refused() = %d", got)
	}
	if got := overloadSig().Refused(); got != 55 {
		t.Errorf("Refused() = %d, want 55", got)
	}
}

// TestReactiveOverloadedEmergency pins the Reactive observer semantics: the
// backpressure signal bypasses both the threshold test and the confirmation
// streak. The load here is far below HighFraction*QMax — measurement alone
// would never trigger — yet one overloaded cycle forces an emergency
// scale-out on the next tick.
func TestReactiveOverloadedEmergency(t *testing.T) {
	m := migration.Model{Q: 100, QMax: 130, D: 4, P: 2}
	r := &Reactive{Model: m, MaxMachines: 8}
	const machines, load = 2, 200 // 100/machine, under the 169 threshold

	if dec, err := r.Tick(machines, false, load); err != nil || dec != nil {
		t.Fatalf("quiet tick: dec=%+v err=%v", dec, err)
	}
	r.Overloaded(overloadSig())
	dec, err := r.Tick(machines, false, load)
	if err != nil {
		t.Fatal(err)
	}
	if dec == nil || !dec.Emergency || dec.RateFactor != 8 {
		t.Fatalf("post-overload tick: %+v, want emergency at rate 8", dec)
	}
	if dec.Target <= machines {
		t.Fatalf("emergency target %d did not add capacity to %d machines", dec.Target, machines)
	}

	// The pending flag is one-shot: the next tick is quiet again.
	if dec, err := r.Tick(dec.Target, false, load); err != nil || dec != nil {
		t.Fatalf("tick after emergency: dec=%+v err=%v", dec, err)
	}
	// A zero signal must not arm it.
	r.Overloaded(OverloadSignal{})
	if dec, err := r.Tick(machines, false, load); err != nil || dec != nil {
		t.Fatalf("tick after zero signal: dec=%+v err=%v", dec, err)
	}
	// A reconfiguring tick consumes the flag: the refusals happened while a
	// move was already adding capacity, so they are not fresh evidence.
	r.Overloaded(overloadSig())
	if dec, err := r.Tick(machines, true, load); err != nil || dec != nil {
		t.Fatalf("reconfiguring tick: dec=%+v err=%v", dec, err)
	}
	if dec, err := r.Tick(machines, false, load); err != nil || dec != nil {
		t.Fatalf("tick after reconfiguring consumed the flag: dec=%+v err=%v", dec, err)
	}
}

// TestPredictiveOverloadedFallback pins the Predictive observer semantics:
// one overloaded cycle is tolerated (CoDel absorbs transients), two
// consecutive ones discard the horizon plan and enter the reactive fallback;
// while in fallback the signal is forwarded so backpressure keeps working
// even with the load measurement pinned at the throughput ceiling.
func TestPredictiveOverloadedFallback(t *testing.T) {
	m := migration.Model{Q: 100, QMax: 130, D: 4, P: 2}
	trace := make([]float64, 256)
	for i := range trace {
		trace[i] = 250
	}
	online := predictor.NewOnline(predictor.NewOracle(trace), 0, 0)
	if err := online.ObserveAll(nil); err != nil {
		t.Fatal(err)
	}
	p := &Predictive{Model: m, Predictor: online, Horizon: 12, MaxMachines: 8, FallbackCycles: 4}

	if p.InFallback() {
		t.Fatal("fresh controller in fallback")
	}
	p.Overloaded(overloadSig())
	if p.InFallback() {
		t.Fatal("single overloaded cycle entered fallback")
	}
	p.Overloaded(OverloadSignal{}) // a quiet cycle resets the streak
	p.Overloaded(overloadSig())
	if p.InFallback() {
		t.Fatal("streak survived a quiet cycle")
	}
	p.Overloaded(overloadSig())
	p.Overloaded(overloadSig())
	if !p.InFallback() {
		t.Fatal("two consecutive overloaded cycles did not enter fallback")
	}

	// In fallback with load visibly past the threshold: the decision must be
	// the emergency escape hatch.
	dec, err := p.Tick(3, false, 700)
	if err != nil {
		t.Fatal(err)
	}
	if dec == nil || !dec.Emergency || dec.RateFactor != 8 || dec.Target <= 3 {
		t.Fatalf("fallback tick at load 700: %+v, want emergency scale-out at rate 8", dec)
	}

	// Still in fallback, load pinned below threshold (saturated measurement):
	// only the forwarded signal can drive the next scale-out.
	machines := dec.Target
	p.Overloaded(overloadSig())
	dec, err = p.Tick(machines, false, 250)
	if err != nil {
		t.Fatal(err)
	}
	if dec == nil || !dec.Emergency || dec.Target <= machines {
		t.Fatalf("forwarded-signal tick: %+v, want emergency past %d machines", dec, machines)
	}
}

// TestControllerConformanceUnderOverload is the overload axis of the
// conformance suite: the replay holds the cluster at 2x saturation for a
// sustained window. Saturation is what makes this axis different from the
// load-spike replays — the measured load pins at capacity (throughput cannot
// exceed it), so threshold detection goes blind and only the OverloadSignal
// carries the evidence. The contract:
//
//  1. Tick never errors and never decides while reconfiguring, with the
//     signal delivered every cycle (zero included) the way the runtime does.
//  2. Targets stay within [1, max] no matter how long the refusals persist.
//  3. Every OverloadObserver controller scales out during the window (an
//     observer that ignores sustained backpressure fails the axis).
//  4. The replay returns to steady state: once refusals stop, no controller
//     keeps issuing emergency decisions.
func TestControllerConformanceUnderOverload(t *testing.T) {
	const (
		maxMachines = 8
		steps       = 500
		moveTicks   = 3
		windowStart = 200
		windowEnd   = 280
		quietAfter  = 350 // well past the window: emergencies here are churn
	)
	m := migration.Model{Q: 100, QMax: 130, D: 4, P: 2}
	base := func(int) float64 { return 250 } // what predictors can foresee

	observers := map[string]bool{}
	for name, fresh := range conformanceControllers(t, m, maxMachines, steps, base) {
		t.Run(name, func(t *testing.T) {
			ctrl := fresh()
			_, isObserver := ctrl.(OverloadObserver)
			observers[name] = isObserver
			machines := 2
			inFlight := 0
			pending := 0
			decisions, emergencies, lateEmergencies := 0, 0, 0
			for i := 0; i < steps; i++ {
				overloaded := i >= windowStart && i < windowEnd
				capacity := float64(machines) * m.QMax
				measured := 250.0
				if overloaded {
					// Offered load is 2x whatever the cluster can take, so
					// the measurement saturates and the surplus is refused.
					measured = capacity
				}
				if obs, ok := ctrl.(OverloadObserver); ok {
					sig := OverloadSignal{}
					if overloaded {
						sig = OverloadSignal{Rejected: int64(capacity), Shed: 20, QueueDelay: 100 * time.Millisecond}
					}
					obs.Overloaded(sig)
				}
				reconfiguring := inFlight > 0
				dec, err := ctrl.Tick(machines, reconfiguring, measured)
				if err != nil {
					t.Fatalf("tick %d: %v", i, err)
				}
				if dec != nil {
					if reconfiguring {
						t.Fatalf("tick %d: decision %+v returned while reconfiguring", i, dec)
					}
					if dec.Target < 1 || dec.Target > maxMachines {
						t.Fatalf("tick %d: decision target %d outside [1, %d]", i, dec.Target, maxMachines)
					}
					if dec.RateFactor < 0 {
						t.Fatalf("tick %d: negative rate factor %v", i, dec.RateFactor)
					}
					decisions++
					if dec.Emergency {
						emergencies++
						if i >= quietAfter {
							lateEmergencies++
						}
					}
					pending = dec.Target
					inFlight = moveTicks
					continue
				}
				if inFlight > 0 {
					inFlight--
					if inFlight == 0 {
						machines = pending
					}
				}
			}
			if isObserver && emergencies == 0 {
				t.Fatalf("%s observes overload but issued no emergency decision across a %d-tick saturation window",
					name, windowEnd-windowStart)
			}
			if lateEmergencies > 0 {
				t.Fatalf("%s issued %d emergency decisions after tick %d — did not return to steady state",
					name, lateEmergencies, quietAfter)
			}
		})
	}
	// The axis is vacuous unless it actually covered both kinds.
	if !observers["reactive"] || !observers["predictive"] {
		t.Fatalf("reactive/predictive no longer implement OverloadObserver: %+v", observers)
	}
	if observers["static"] {
		t.Fatal("static unexpectedly implements OverloadObserver; the non-observer leg is uncovered")
	}
}
